package grid

import (
	"math/rand"
	"testing"

	"neurospatial/internal/geom"
)

func randBoxes(rng *rand.Rand, n int, extent, maxHalf float64) []geom.AABB {
	out := make([]geom.AABB, n)
	for i := range out {
		c := geom.V(rng.Float64()*extent, rng.Float64()*extent, rng.Float64()*extent)
		out[i] = geom.BoxAround(c, rng.Float64()*maxHalf+maxHalf/10)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	b := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	if _, err := New(b, 0, 1, 1, nil); err == nil {
		t.Error("zero resolution accepted")
	}
	if _, err := New(geom.EmptyAABB(), 2, 2, 2, nil); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestCellGeometry(t *testing.T) {
	b := geom.Box(geom.V(0, 0, 0), geom.V(4, 2, 2))
	g, err := New(b, 4, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumCells() != 16 {
		t.Fatalf("cells = %d", g.NumCells())
	}
	nx, ny, nz := g.Dims()
	if nx != 4 || ny != 2 || nz != 2 {
		t.Fatalf("dims = %d %d %d", nx, ny, nz)
	}
	// Cells tile the bounds exactly.
	var vol float64
	for c := 0; c < g.NumCells(); c++ {
		cb := g.CellBounds(c)
		vol += cb.Volume()
		if !b.ContainsBox(cb) {
			t.Fatalf("cell %d escapes bounds: %v", c, cb)
		}
	}
	if !almostEq(vol, b.Volume(), 1e-9) {
		t.Errorf("cells cover %v of %v", vol, b.Volume())
	}
	// First and last cell positions.
	if got := g.CellBounds(0); got.Min != b.Min {
		t.Errorf("cell 0 = %v", got)
	}
	if got := g.CellBounds(15); got.Max != b.Max {
		t.Errorf("cell 15 = %v", got)
	}
}

func almostEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestQueryEqualsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	boxes := randBoxes(rng, 2000, 50, 1)
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(50, 50, 50))
	g, err := New(bounds, 12, 12, 12, boxes)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		q := geom.BoxAround(geom.V(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50),
			rng.Float64()*6+0.5)
		got := make(map[int32]bool)
		g.Query(q, func(i int32) {
			if got[i] {
				t.Fatal("duplicate report")
			}
			got[i] = true
		})
		for i, b := range boxes {
			want := b.Intersects(q)
			if want != got[int32(i)] {
				t.Fatalf("box %d: got %v want %v", i, got[int32(i)], want)
			}
		}
	}
}

func TestQueryFindsOutOfBoundsBoxes(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10))
	// A box entirely outside the grid bounds is clamped to boundary cells.
	boxes := []geom.AABB{geom.BoxAround(geom.V(15, 5, 5), 1)}
	g, err := New(bounds, 5, 5, 5, boxes)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	g.Query(geom.BoxAround(geom.V(12, 5, 5), 4), func(i int32) { found = true })
	if !found {
		t.Error("out-of-bounds box lost")
	}
}

func TestForEachCandidatePairExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	boxes := randBoxes(rng, 600, 30, 1.5)
	bounds := geom.Box(geom.V(-2, -2, -2), geom.V(32, 32, 32))
	g, err := New(bounds, 10, 10, 10, boxes)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ i, j int32 }
	got := make(map[pair]int)
	g.ForEachCandidatePair(func(i, j int32) {
		if i >= j {
			t.Fatalf("unordered pair (%d,%d)", i, j)
		}
		got[pair{i, j}]++
	})
	// Oracle.
	want := make(map[pair]bool)
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Intersects(boxes[j]) {
				want[pair{int32(i), int32(j)}] = true
			}
		}
	}
	if len(want) == 0 {
		t.Fatal("test data produced no intersecting pairs")
	}
	for p, n := range got {
		if n != 1 {
			t.Fatalf("pair %v reported %d times", p, n)
		}
		if !want[p] {
			t.Fatalf("pair %v reported but boxes do not intersect", p)
		}
	}
	for p := range want {
		if got[p] == 0 {
			t.Fatalf("pair %v missed", p)
		}
	}
}

func TestNewAutoResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	boxes := randBoxes(rng, 4096, 40, 0.5)
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 40))
	g, err := NewAuto(bounds, boxes, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 4096/8 = 512 cells target, cube root = 8.
	nx, ny, nz := g.Dims()
	if nx != 8 || ny != 8 || nz != 8 {
		t.Errorf("auto dims = %d %d %d", nx, ny, nz)
	}
	// Default perCell.
	g2, err := NewAuto(bounds, boxes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumCells() == 0 {
		t.Error("auto grid with default perCell has no cells")
	}
}

// TestNewAutoRoundsResolution: the per-axis resolution must round the cube
// root of the cell target, not truncate it — flooring built a grid up to 27%
// coarser than asked (999 target cells -> 9³ = 729).
func TestNewAutoRoundsResolution(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(40, 40, 40))
	cases := []struct {
		boxes   int
		perCell float64
		wantDim int
	}{
		{7992, 8, 10}, // 999 target cells: cbrt 9.9966 rounds up to 10
		{5832, 8, 9},  // 729 exactly: cbrt 9
		{6000, 8, 9},  // 750: cbrt 9.086 rounds down to 9
		{1, 8, 1},     // tiny inputs clamp at 1
		{30, 8, 2},    // 3.75 cells: cbrt 1.55 rounds to 2
	}
	rng := rand.New(rand.NewSource(71))
	for _, tc := range cases {
		g, err := NewAuto(bounds, randBoxes(rng, tc.boxes, 40, 0.2), tc.perCell)
		if err != nil {
			t.Fatal(err)
		}
		nx, ny, nz := g.Dims()
		if nx != tc.wantDim || ny != tc.wantDim || nz != tc.wantDim {
			t.Errorf("NewAuto(%d boxes, perCell %.0f) dims = %d×%d×%d, want %d per axis",
				tc.boxes, tc.perCell, nx, ny, nz, tc.wantDim)
		}
	}
}

func TestReportCellUniqueness(t *testing.T) {
	bounds := geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10))
	g, err := New(bounds, 5, 5, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := geom.Box(geom.V(1, 1, 1), geom.V(6, 6, 6))
	b := geom.Box(geom.V(3, 3, 3), geom.V(9, 9, 9))
	// Exactly one cell claims the pair.
	claims := 0
	for c := 0; c < g.NumCells(); c++ {
		if g.ReportCell(c, a, b) {
			claims++
		}
	}
	if claims != 1 {
		t.Errorf("pair claimed by %d cells", claims)
	}
	// Disjoint pair: no cell claims it.
	d := geom.Box(geom.V(8, 8, 8), geom.V(9, 9, 9))
	e := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	for c := 0; c < g.NumCells(); c++ {
		if g.ReportCell(c, d, e) {
			t.Fatal("disjoint pair claimed")
		}
	}
}
