// Package grid provides a uniform spatial hash grid over axis-aligned boxes.
//
// Two consumers use it as a construction substrate:
//
//   - FLAT's indexing phase derives the neighborhood information (§2.1 of the
//     paper: "what spatial elements neighbor each other") by rasterizing
//     element boxes into cells and emitting candidate pairs per cell; and
//   - the PBSM join baseline partitions both datasets into the same grid and
//     joins cell-by-cell.
//
// Boxes spanning multiple cells are registered in each (replication), so
// consumers that must report a pair at most once deduplicate with the
// standard reference-point method, provided here as ReportCell.
package grid

import (
	"fmt"
	"math"

	"neurospatial/internal/geom"
)

// Grid is a uniform grid of nx × ny × nz cells covering a bounding box, each
// cell holding the indices of the boxes overlapping it.
type Grid struct {
	bounds     geom.AABB
	nx, ny, nz int
	cell       geom.Vec // cell extent per axis
	cells      [][]int32
	boxes      []geom.AABB
}

// New builds a grid over bounds with the given resolution per axis and
// registers every box. Boxes are identified by their index in the slice.
// Boxes outside the bounds are clamped onto the boundary cells so nothing is
// lost.
func New(bounds geom.AABB, nx, ny, nz int, boxes []geom.AABB) (*Grid, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("grid: resolution %dx%dx%d not positive", nx, ny, nz)
	}
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("grid: empty bounds %v", bounds)
	}
	size := bounds.Size()
	g := &Grid{
		bounds: bounds,
		nx:     nx, ny: ny, nz: nz,
		cell: geom.V(
			size.X/float64(nx),
			size.Y/float64(ny),
			size.Z/float64(nz),
		),
		cells: make([][]int32, nx*ny*nz),
		boxes: boxes,
	}
	for i := range boxes {
		g.forEachCell(boxes[i], func(c int) {
			g.cells[c] = append(g.cells[c], int32(i))
		})
	}
	return g, nil
}

// NewAuto chooses a cubic-ish resolution targeting the given mean number of
// boxes per cell and builds the grid. perCell values <= 0 default to 8.
func NewAuto(bounds geom.AABB, boxes []geom.AABB, perCell float64) (*Grid, error) {
	if perCell <= 0 {
		perCell = 8
	}
	n := float64(len(boxes))
	cells := math.Max(1, n/perCell)
	// Round the per-axis resolution: truncating Cbrt systematically
	// undershoots the cell target (999 target cells would build 9³ = 729,
	// 27% coarser than asked).
	k := int(math.Max(1, math.Round(math.Cbrt(cells))))
	return New(bounds, k, k, k, boxes)
}

// Bounds returns the grid's covered region.
func (g *Grid) Bounds() geom.AABB { return g.bounds }

// Dims returns the grid resolution.
func (g *Grid) Dims() (nx, ny, nz int) { return g.nx, g.ny, g.nz }

// NumCells returns the total cell count.
func (g *Grid) NumCells() int { return len(g.cells) }

// CellBoxes returns the indices registered in cell c. The slice is shared and
// must not be modified.
func (g *Grid) CellBoxes(c int) []int32 { return g.cells[c] }

// CellBounds returns the spatial extent of cell c.
func (g *Grid) CellBounds(c int) geom.AABB {
	ix := c % g.nx
	iy := (c / g.nx) % g.ny
	iz := c / (g.nx * g.ny)
	min := geom.Vec{
		X: g.bounds.Min.X + float64(ix)*g.cell.X,
		Y: g.bounds.Min.Y + float64(iy)*g.cell.Y,
		Z: g.bounds.Min.Z + float64(iz)*g.cell.Z,
	}
	return geom.AABB{Min: min, Max: min.Add(g.cell)}
}

// cellIndex maps integer cell coordinates to the flat index.
func (g *Grid) cellIndex(ix, iy, iz int) int {
	return ix + g.nx*(iy+g.ny*iz)
}

// cellRange returns the clamped integer coordinate range covered by box b.
func (g *Grid) cellRange(b geom.AABB) (x0, x1, y0, y1, z0, z1 int) {
	x0 = g.coord(b.Min.X, g.bounds.Min.X, g.cell.X, g.nx)
	x1 = g.coord(b.Max.X, g.bounds.Min.X, g.cell.X, g.nx)
	y0 = g.coord(b.Min.Y, g.bounds.Min.Y, g.cell.Y, g.ny)
	y1 = g.coord(b.Max.Y, g.bounds.Min.Y, g.cell.Y, g.ny)
	z0 = g.coord(b.Min.Z, g.bounds.Min.Z, g.cell.Z, g.nz)
	z1 = g.coord(b.Max.Z, g.bounds.Min.Z, g.cell.Z, g.nz)
	return
}

func (g *Grid) coord(v, min, cell float64, n int) int {
	if cell == 0 {
		return 0
	}
	i := int(math.Floor((v - min) / cell))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// forEachCell invokes fn for every cell overlapping box b.
func (g *Grid) forEachCell(b geom.AABB, fn func(cell int)) {
	x0, x1, y0, y1, z0, z1 := g.cellRange(b)
	for iz := z0; iz <= z1; iz++ {
		for iy := y0; iy <= y1; iy++ {
			for ix := x0; ix <= x1; ix++ {
				fn(g.cellIndex(ix, iy, iz))
			}
		}
	}
}

// ForEachInRange invokes fn for every cell overlapping b, in ascending
// cell-index order, with the box indices registered in the cell (shared
// slice, must not be modified). The engine's grid index uses it as its
// candidate generator; unlike Query it does not test the boxes themselves,
// so callers refine (and deduplicate, when boxes are replicated across
// cells) as they see fit.
func (g *Grid) ForEachInRange(b geom.AABB, fn func(cell int, ids []int32)) {
	g.forEachCell(b, func(c int) { fn(c, g.cells[c]) })
}

// Query reports the indices of all boxes whose grid cells overlap q and whose
// boxes intersect q. Each index is reported once.
func (g *Grid) Query(q geom.AABB, visit func(int32)) {
	seen := make(map[int32]struct{})
	g.forEachCell(q, func(c int) {
		for _, i := range g.cells[c] {
			if _, dup := seen[i]; dup {
				continue
			}
			if g.boxes[i].Intersects(q) {
				seen[i] = struct{}{}
				visit(i)
			}
		}
	})
}

// ReportCell reports whether cell c is the canonical reporting cell for an
// intersecting pair of boxes: the cell containing the reference point (the
// minimum corner of the intersection). The reference point lies inside both
// boxes, so both are registered in its cell, and it is unique per pair —
// the standard PBSM trick for emitting each replicated pair exactly once
// without a result hash table.
func (g *Grid) ReportCell(c int, a, b geom.AABB) bool {
	ref := a.Intersect(b)
	if ref.IsEmpty() {
		return false
	}
	p := g.bounds.Clamp(ref.Min)
	ix := g.coord(p.X, g.bounds.Min.X, g.cell.X, g.nx)
	iy := g.coord(p.Y, g.bounds.Min.Y, g.cell.Y, g.ny)
	iz := g.coord(p.Z, g.bounds.Min.Z, g.cell.Z, g.nz)
	return g.cellIndex(ix, iy, iz) == c
}

// ForEachCandidatePair enumerates every unordered pair (i, j), i < j, of
// *registered* boxes that intersect, reporting each pair exactly once (the
// reference-point method suppresses replicated reports). Callers that need
// pairs within a distance eps must register boxes pre-expanded by eps/2 and
// refine the reported candidates exactly; FLAT's neighborhood derivation does
// exactly that.
func (g *Grid) ForEachCandidatePair(visit func(i, j int32)) {
	for c := range g.cells {
		ids := g.cells[c]
		for ai := 0; ai < len(ids); ai++ {
			for bi := ai + 1; bi < len(ids); bi++ {
				i, j := ids[ai], ids[bi]
				if i > j {
					i, j = j, i
				}
				if !g.boxes[i].Intersects(g.boxes[j]) {
					continue
				}
				if !g.ReportCell(c, g.boxes[i], g.boxes[j]) {
					continue
				}
				visit(i, j)
			}
		}
	}
}
