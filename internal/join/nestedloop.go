package join

import "time"

// NestedLoop is the quadratic baseline: every object of A is compared with
// every object of B, with only the box filter between them and the exact
// predicate. §4 of the paper cites its O(n²) complexity as the reason the
// neuroscientists needed better tools.
type NestedLoop struct{}

// Name implements Algorithm.
func (NestedLoop) Name() string { return "NestedLoop" }

// Join implements Algorithm.
func (NestedLoop) Join(a, b []Object, eps float64, emit func(Pair)) Stats {
	var st Stats
	start := time.Now()
	for i := range a {
		// Expanding A's box by eps makes the box test a correct filter for
		// the distance predicate.
		abox := a[i].Box.Expand(eps)
		for j := range b {
			st.BoxTests++
			if !abox.Intersects(b[j].Box) {
				continue
			}
			st.Comparisons++
			if within(&a[i], &b[j], eps) {
				st.Results++
				emit(Pair{A: a[i].ID, B: b[j].ID})
			}
		}
	}
	st.ProbeTime = time.Since(start)
	return st
}
