package join

import (
	"time"

	"neurospatial/internal/parallel"
	"neurospatial/internal/rtree"
)

// S3 is the synchronized R-tree traversal join (Brinkhoff, Kriegel & Seeger,
// SIGMOD'93): build an R-tree on each dataset, then recursively descend pairs
// of nodes whose MBRs come within eps of each other until leaf items are
// compared. The trees are the only auxiliary state, so the footprint is as
// small as the sweep join's — and §4.1 of the paper puts it in the same
// bucket: "two orders of magnitude faster than known approaches with an
// equally small memory footprint (synchronized R-tree traversal, S3 ...)".
// The slowness comes from node-pair blowup: in dense data many node MBRs
// overlap, so the traversal expands far more pairs than produce results.
type S3 struct {
	// Fanout is the R-tree node capacity. Values <= 0 select
	// rtree.DefaultFanout.
	Fanout int
	// Workers parallelizes both phases: the two operand trees are built
	// concurrently, and the traversal is parallelized by expanding the root
	// pair breadth-first into independent node-pair tasks (one slot each,
	// per-task pair buffers merged in task order). 0 or 1 runs serially;
	// values > 1 use that many workers; negative values use one worker per
	// CPU. The emitted pair sequence — and every stats counter — is
	// identical to a serial run for any worker count, because the expansion
	// applies exactly the recursion's pruning tests and the task order is
	// the recursion's preorder.
	Workers int
}

// Name implements Algorithm.
func (S3) Name() string { return "S3" }

// Join implements Algorithm.
func (s S3) Join(a, b []Object, eps float64, emit func(Pair)) Stats {
	var st Stats
	if len(a) == 0 || len(b) == 0 {
		return st
	}
	fanout := s.Fanout
	if fanout <= 0 {
		fanout = rtree.DefaultFanout
	}
	workers := 1
	if s.Workers != 0 && s.Workers != 1 {
		workers = parallel.Workers(s.Workers)
	}
	buildStart := time.Now()
	var ta, tb *rtree.Tree
	if workers > 1 {
		parallel.Do(
			func() { ta = buildTree(a, fanout) },
			func() { tb = buildTree(b, fanout) },
		)
	} else {
		ta = buildTree(a, fanout)
		tb = buildTree(b, fanout)
	}
	// Tree memory: roughly one Item per object per level-0 slot plus
	// internal nodes ~ n/fanout * nodeBytes; estimate entries dominate.
	st.ExtraBytes = int64(len(a)+len(b)) * (6*8 + 4) * 3 / 2
	st.BuildTime = time.Since(buildStart)

	probeStart := time.Now()
	ra, okA := ta.Root()
	rb, okB := tb.Root()
	if okA && okB {
		if workers > 1 {
			s.joinParallel(workers, ra, rb, a, b, eps, emit, &st)
		} else {
			s.joinNodes(ra, rb, a, b, eps, emit, &st)
		}
	}
	st.ProbeTime = time.Since(probeStart)
	return st
}

// nodeTask is one independent unit of the parallel traversal: a pair of
// nodes whose subtrees are joined by a recursive descent.
type nodeTask struct {
	a, b rtree.NodeView
}

// joinParallel splits the synchronized traversal into independent node-pair
// tasks and runs them on the worker pool. The root pair is expanded
// breadth-first — with exactly the pruning tests and side-selection of the
// recursive descent — until there are a few tasks per worker; each surviving
// task then descends recursively with worker-local stats, and the per-task
// pair buffers merge in task order. Task order is the recursion's preorder,
// so the emitted sequence and all counters equal the serial traversal's.
func (s S3) joinParallel(workers int, ra, rb rtree.NodeView, a, b []Object,
	eps float64, emit func(Pair), st *Stats) {

	tasks := s.expandFrontier(ra, rb, eps, workers*4, st)
	stats := make([]Stats, workers)
	parallel.Collect(workers, len(tasks), func(w, slot int, emit func(Pair)) {
		s.joinNodes(tasks[slot].a, tasks[slot].b, a, b, eps, emit, &stats[w])
	}, emit)
	st.Merge(stats)
}

// expandFrontier grows the root pair into at least target independent tasks,
// one breadth-first level per round, stopping early when every remaining
// pair is leaf-leaf. Expanded pairs are counted against st exactly as the
// recursion would have counted them.
func (s S3) expandFrontier(ra, rb rtree.NodeView, eps float64, target int, st *Stats) []nodeTask {
	frontier := []nodeTask{{a: ra, b: rb}}
	for len(frontier) < target {
		next := make([]nodeTask, 0, 2*len(frontier))
		expanded := false
		for _, t := range frontier {
			na, nb := t.a, t.b
			if na.IsLeaf() && nb.IsLeaf() {
				next = append(next, t)
				continue
			}
			expanded = true
			st.NodePairs++
			descendA := !na.IsLeaf() && (nb.IsLeaf() || na.Level() >= nb.Level())
			if descendA {
				for i := 0; i < na.NumChildren(); i++ {
					c := na.Child(i)
					st.BoxTests++
					if c.Box().Expand(eps).Intersects(nb.Box()) {
						next = append(next, nodeTask{a: c, b: nb})
					}
				}
			} else {
				for i := 0; i < nb.NumChildren(); i++ {
					c := nb.Child(i)
					st.BoxTests++
					if na.Box().Expand(eps).Intersects(c.Box()) {
						next = append(next, nodeTask{a: na, b: c})
					}
				}
			}
		}
		frontier = next
		if !expanded {
			break
		}
	}
	return frontier
}

func buildTree(objs []Object, fanout int) *rtree.Tree {
	items := make([]rtree.Item, len(objs))
	for i := range objs {
		// Item IDs are positional indices so leaf entries map back to objs.
		items[i] = rtree.Item{Box: objs[i].Box, ID: int32(i)}
	}
	t, err := rtree.STR(items, fanout)
	if err != nil {
		// Unreachable: fanout is validated above.
		panic(err)
	}
	return t
}

// joinNodes descends a pair of nodes. The deeper node is expanded first so
// trees of different heights stay synchronized.
func (s S3) joinNodes(na, nb rtree.NodeView, a, b []Object, eps float64,
	emit func(Pair), st *Stats) {
	st.NodePairs++
	if na.IsLeaf() && nb.IsLeaf() {
		for _, ia := range na.Items() {
			abox := a[ia.ID].Box.Expand(eps)
			for _, ib := range nb.Items() {
				st.BoxTests++
				if !abox.Intersects(b[ib.ID].Box) {
					continue
				}
				st.Comparisons++
				if within(&a[ia.ID], &b[ib.ID], eps) {
					st.Results++
					emit(Pair{A: a[ia.ID].ID, B: b[ib.ID].ID})
				}
			}
		}
		return
	}
	switch {
	case na.IsLeaf(): // descend B only
		for i := 0; i < nb.NumChildren(); i++ {
			c := nb.Child(i)
			st.BoxTests++
			if na.Box().Expand(eps).Intersects(c.Box()) {
				s.joinNodes(na, c, a, b, eps, emit, st)
			}
		}
	case nb.IsLeaf(): // descend A only
		for i := 0; i < na.NumChildren(); i++ {
			c := na.Child(i)
			st.BoxTests++
			if c.Box().Expand(eps).Intersects(nb.Box()) {
				s.joinNodes(c, nb, a, b, eps, emit, st)
			}
		}
	case na.Level() >= nb.Level(): // descend the taller tree
		for i := 0; i < na.NumChildren(); i++ {
			c := na.Child(i)
			st.BoxTests++
			if c.Box().Expand(eps).Intersects(nb.Box()) {
				s.joinNodes(c, nb, a, b, eps, emit, st)
			}
		}
	default:
		for i := 0; i < nb.NumChildren(); i++ {
			c := nb.Child(i)
			st.BoxTests++
			if na.Box().Expand(eps).Intersects(c.Box()) {
				s.joinNodes(na, c, a, b, eps, emit, st)
			}
		}
	}
}
