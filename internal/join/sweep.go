package join

import (
	"sort"
	"time"
)

// SweepLine implements a forward plane-sweep join: both datasets are sorted
// by their boxes' lower X bound and a single sweep advances through both,
// comparing each object against the opposite dataset's objects whose X
// intervals overlap it. It needs only the two sort orders as extra state, so
// its memory footprint is small — the paper groups it with the
// memory-frugal approaches ("Scalable Sweep Join") that are two orders of
// magnitude slower than TOUCH because dense data puts many elements on the
// sweep line at once (§4: "can become inefficient if too many elements are on
// the sweep line").
type SweepLine struct{}

// Name implements Algorithm.
func (SweepLine) Name() string { return "SweepLine" }

// Join implements Algorithm.
func (SweepLine) Join(a, b []Object, eps float64, emit func(Pair)) Stats {
	var st Stats
	buildStart := time.Now()

	// Sort indices of both datasets by box lower X; A's intervals are
	// expanded by eps so X-interval overlap is a correct filter.
	ai := make([]int32, len(a))
	for i := range ai {
		ai[i] = int32(i)
	}
	bi := make([]int32, len(b))
	for i := range bi {
		bi[i] = int32(i)
	}
	sort.Slice(ai, func(x, y int) bool {
		return a[ai[x]].Box.Min.X < a[ai[y]].Box.Min.X
	})
	sort.Slice(bi, func(x, y int) bool {
		return b[bi[x]].Box.Min.X < b[bi[y]].Box.Min.X
	})
	st.ExtraBytes = int64(len(ai)+len(bi)) * 4
	st.BuildTime = time.Since(buildStart)

	probeStart := time.Now()
	// Forward sweep (Brinkhoff-style loop join on sorted sequences): take
	// the next object in global X order and scan forward through the
	// opposite list while X intervals overlap.
	ia, ib := 0, 0
	for ia < len(ai) && ib < len(bi) {
		if a[ai[ia]].Box.Min.X-eps <= b[bi[ib]].Box.Min.X {
			cur := &a[ai[ia]]
			curBox := cur.Box.Expand(eps)
			for k := ib; k < len(bi); k++ {
				other := &b[bi[k]]
				if other.Box.Min.X > curBox.Max.X {
					break // sweep-axis overlap ended
				}
				st.BoxTests++
				if !curBox.Intersects(other.Box) {
					continue
				}
				st.Comparisons++
				if within(cur, other, eps) {
					st.Results++
					emit(Pair{A: cur.ID, B: other.ID})
				}
			}
			ia++
		} else {
			cur := &b[bi[ib]]
			for k := ia; k < len(ai); k++ {
				other := &a[ai[k]]
				otherBox := other.Box.Expand(eps)
				if other.Box.Min.X-eps > cur.Box.Max.X {
					break
				}
				st.BoxTests++
				if !otherBox.Intersects(cur.Box) {
					continue
				}
				st.Comparisons++
				if within(other, cur, eps) {
					st.Results++
					emit(Pair{A: other.ID, B: cur.ID})
				}
			}
			ib++
		}
	}
	st.ProbeTime = time.Since(probeStart)
	return st
}
