// Package join defines the spatial distance-join framework of §4 of the
// paper and implements every baseline algorithm the demo lets the audience
// run against TOUCH:
//
//   - NestedLoop — the O(n·m) in-memory join the paper attributes to Mishra &
//     Eich's survey; the approach the neuroscientists started from.
//   - SweepLine — a scalable sweep join in the style of Edelsbrunner's plane
//     sweep: sort both sets on X, sweep once, keep active lists. Degrades
//     when many elements overlap on the sweep axis (dense data), the failure
//     mode §4 calls out.
//   - PBSM — Partition Based Spatial-Merge (Patel & DeWitt): partition both
//     datasets into a uniform grid, join cell-by-cell, deduplicate replicated
//     results with the reference-point method. Fast, but replication costs
//     memory — the drawback §4 cites.
//   - S3 — synchronized R-tree traversal (à la Brinkhoff et al.): build an
//     R-tree on each dataset and descend matching node pairs. Small memory
//     footprint but excessive node-pair expansion under overlap.
//
// TOUCH itself lives in the touch package and satisfies the same Algorithm
// interface. The workload is the synapse-placement join: find all pairs of
// capsules from two datasets whose surfaces come within eps of each other
// ("close enough for electrical impulses to leap over", §4).
//
// Every algorithm reports Stats with the three quantities the demo's runtime
// charts display: time spent, memory footprint, and the number of pairwise
// (exact geometric) comparisons.
package join

import (
	"time"

	"neurospatial/internal/geom"
)

// Object is one join operand: a capsule with its cached bounding box.
type Object struct {
	// ID is the caller's identifier, reported in result pairs.
	ID int32
	// Seg is the capsule geometry used by the exact predicate.
	Seg geom.Segment
	// Box caches Seg.Bounds(); Make fills it.
	Box geom.AABB
}

// Make builds an Object with its box cached.
func Make(id int32, s geom.Segment) Object {
	return Object{ID: id, Seg: s, Box: s.Bounds()}
}

// Pair is one join result: the IDs of an object from A and an object from B
// whose capsule surfaces are within eps.
type Pair struct {
	A, B int32
}

// Stats describes the work one join performed. The demo updates charts with
// exactly these quantities at runtime (§4.2: "time spent on the join, memory
// footprint as well as the number of pairwise comparisons needed").
type Stats struct {
	// BuildTime is the time spent building auxiliary structures (indexes,
	// partitions, sort orders).
	BuildTime time.Duration
	// ProbeTime is the time spent matching.
	ProbeTime time.Duration
	// Comparisons counts exact capsule-distance evaluations (the expensive
	// refinement predicate).
	Comparisons int64
	// BoxTests counts box-overlap filter tests.
	BoxTests int64
	// NodePairs counts tree node-pair visits (S3/TOUCH style algorithms).
	NodePairs int64
	// Results counts emitted pairs.
	Results int64
	// ExtraBytes estimates the peak auxiliary memory of the algorithm
	// beyond the input arrays, in bytes (replication shows up here).
	ExtraBytes int64
}

// TotalTime returns build plus probe time.
func (s Stats) TotalTime() time.Duration { return s.BuildTime + s.ProbeTime }

// Merge adds the counter fields of worker-local stats records into s. The
// parallel execution paths give every worker its own Stats so the hot loops
// stay lock-free, then merge once the pool drains. Times are deliberately
// not merged: phase wall-clock times are measured by the caller around the
// parallel section, and summing per-worker durations would double-count.
func (s *Stats) Merge(workers []Stats) {
	for i := range workers {
		s.Comparisons += workers[i].Comparisons
		s.BoxTests += workers[i].BoxTests
		s.NodePairs += workers[i].NodePairs
		s.Results += workers[i].Results
		s.ExtraBytes += workers[i].ExtraBytes
	}
}

// Algorithm is a two-way spatial distance join.
type Algorithm interface {
	// Name returns the display name used in experiment tables.
	Name() string
	// Join emits every pair (a ∈ A, b ∈ B) with a.Seg within eps of b.Seg.
	// Pairs are emitted exactly once, in unspecified order.
	Join(a, b []Object, eps float64, emit func(Pair)) Stats
}

// objectBytes is the in-memory size of one Object for ExtraBytes accounting:
// ID + 7 float64 + box (6 float64) rounded to what the Go runtime lays out.
const objectBytes = 8 + 7*8 + 6*8

// within is the exact join predicate, shared by all algorithms so their
// comparison counts are directly comparable.
func within(a, b *Object, eps float64) bool {
	return a.Seg.WithinDist(b.Seg, eps)
}
