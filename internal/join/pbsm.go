package join

import (
	"math"
	"time"

	"neurospatial/internal/geom"
)

// PBSM implements Partition Based Spatial-Merge join (Patel & DeWitt,
// SIGMOD'96) adapted to main memory: both datasets are partitioned into the
// cells of a uniform grid (objects overlapping several cells are *replicated*
// into each), every cell is joined independently, and the reference-point
// method suppresses duplicate results from replicated pairs.
//
// PBSM is the strongest baseline in §4.1 — TOUCH is "one order of magnitude
// faster" — but it pays for its speed with replication: the per-cell lists
// hold an entry for every (object, cell) incidence, which is exactly the
// memory overhead the paper criticizes space-oriented partitioning for.
type PBSM struct {
	// PerCell targets the mean number of A-objects per grid cell; the grid
	// resolution is derived from it. Values <= 0 default to 16.
	PerCell float64
}

// Name implements Algorithm.
func (PBSM) Name() string { return "PBSM" }

// Join implements Algorithm.
func (p PBSM) Join(a, b []Object, eps float64, emit func(Pair)) Stats {
	var st Stats
	if len(a) == 0 || len(b) == 0 {
		return st
	}
	perCell := p.PerCell
	if perCell <= 0 {
		perCell = 16
	}
	buildStart := time.Now()

	// Grid geometry over the union of both datasets. A-boxes are expanded
	// by eps so that any qualifying pair shares at least one cell.
	bounds := geom.EmptyAABB()
	for i := range a {
		bounds = bounds.Union(a[i].Box)
	}
	for i := range b {
		bounds = bounds.Union(b[i].Box)
	}
	bounds = bounds.Expand(eps)
	k := int(math.Max(1, math.Cbrt(float64(len(a))/perCell)))
	g := newCellGeometry(bounds, k)

	// Partition with replication. Following the original algorithm, each
	// partition materializes its entries (MBR + object index) so the
	// cell-local join runs over contiguous arrays — the very point of
	// partitioning, and the memory cost §4 of the paper holds against
	// space-oriented approaches.
	type entry struct {
		box geom.AABB
		idx int32
	}
	cellsA := make([][]entry, g.numCells())
	cellsB := make([][]entry, g.numCells())
	var incidences int64
	for i := range a {
		box := a[i].Box.Expand(eps)
		g.forEach(box, func(c int32) {
			cellsA[c] = append(cellsA[c], entry{box: box, idx: int32(i)})
			incidences++
		})
	}
	for i := range b {
		g.forEach(b[i].Box, func(c int32) {
			cellsB[c] = append(cellsB[c], entry{box: b[i].Box, idx: int32(i)})
			incidences++
		})
	}
	const entryBytes = 6*8 + 4
	st.ExtraBytes = incidences*entryBytes + int64(g.numCells())*2*24 // + slice headers
	st.BuildTime = time.Since(buildStart)

	probeStart := time.Now()
	for c := 0; c < g.numCells(); c++ {
		la, lb := cellsA[c], cellsB[c]
		if len(la) == 0 || len(lb) == 0 {
			continue
		}
		for _, ea := range la {
			for _, eb := range lb {
				st.BoxTests++
				if !ea.box.Intersects(eb.box) {
					continue
				}
				// Reference point: report only in the cell containing the
				// intersection's min corner, so each replicated pair is
				// emitted exactly once.
				if g.cellOf(bounds.Clamp(ea.box.Intersect(eb.box).Min)) != int32(c) {
					continue
				}
				st.Comparisons++
				if within(&a[ea.idx], &b[eb.idx], eps) {
					st.Results++
					emit(Pair{A: a[ea.idx].ID, B: b[eb.idx].ID})
				}
			}
		}
	}
	st.ProbeTime = time.Since(probeStart)
	return st
}

// cellGeometry is the minimal uniform-grid math PBSM needs; it holds no
// object lists itself.
type cellGeometry struct {
	bounds geom.AABB
	n      int
	cell   geom.Vec
}

func newCellGeometry(bounds geom.AABB, n int) *cellGeometry {
	size := bounds.Size()
	return &cellGeometry{
		bounds: bounds,
		n:      n,
		cell: geom.V(
			size.X/float64(n),
			size.Y/float64(n),
			size.Z/float64(n),
		),
	}
}

func (g *cellGeometry) numCells() int { return g.n * g.n * g.n }

func (g *cellGeometry) coord(v, min, cell float64) int {
	if cell == 0 {
		return 0
	}
	i := int(math.Floor((v - min) / cell))
	if i < 0 {
		return 0
	}
	if i >= g.n {
		return g.n - 1
	}
	return i
}

func (g *cellGeometry) cellOf(p geom.Vec) int32 {
	ix := g.coord(p.X, g.bounds.Min.X, g.cell.X)
	iy := g.coord(p.Y, g.bounds.Min.Y, g.cell.Y)
	iz := g.coord(p.Z, g.bounds.Min.Z, g.cell.Z)
	return int32(ix + g.n*(iy+g.n*iz))
}

func (g *cellGeometry) forEach(b geom.AABB, fn func(int32)) {
	x0 := g.coord(b.Min.X, g.bounds.Min.X, g.cell.X)
	x1 := g.coord(b.Max.X, g.bounds.Min.X, g.cell.X)
	y0 := g.coord(b.Min.Y, g.bounds.Min.Y, g.cell.Y)
	y1 := g.coord(b.Max.Y, g.bounds.Min.Y, g.cell.Y)
	z0 := g.coord(b.Min.Z, g.bounds.Min.Z, g.cell.Z)
	z1 := g.coord(b.Max.Z, g.bounds.Min.Z, g.cell.Z)
	for iz := z0; iz <= z1; iz++ {
		for iy := y0; iy <= y1; iy++ {
			for ix := x0; ix <= x1; ix++ {
				fn(int32(ix + g.n*(iy+g.n*iz)))
			}
		}
	}
}
