package join

import (
	"math"
	"time"

	"neurospatial/internal/geom"
	"neurospatial/internal/parallel"
)

// PBSM implements Partition Based Spatial-Merge join (Patel & DeWitt,
// SIGMOD'96) adapted to main memory: both datasets are partitioned into the
// cells of a uniform grid (objects overlapping several cells are *replicated*
// into each), every cell is joined independently, and the reference-point
// method suppresses duplicate results from replicated pairs.
//
// PBSM is the strongest baseline in §4.1 — TOUCH is "one order of magnitude
// faster" — but it pays for its speed with replication: the per-cell lists
// hold an entry for every (object, cell) incidence, which is exactly the
// memory overhead the paper criticizes space-oriented partitioning for.
type PBSM struct {
	// PerCell targets the mean number of A-objects per grid cell; the grid
	// resolution is derived from it. Values <= 0 default to 16.
	PerCell float64
	// Workers parallelizes both phases: the partitioning (each worker grids
	// a contiguous block of the input into private cell lists, concatenated
	// in block order) and the cell-by-cell probe (one slot per active cell,
	// per-cell pair buffers merged in cell order). 0 or 1 runs serially;
	// values > 1 use that many workers; negative values use one worker per
	// CPU. The emitted pair sequence is identical to a serial run for any
	// worker count.
	Workers int
}

// Name implements Algorithm.
func (PBSM) Name() string { return "PBSM" }

// Join implements Algorithm.
func (p PBSM) Join(a, b []Object, eps float64, emit func(Pair)) Stats {
	var st Stats
	if len(a) == 0 || len(b) == 0 {
		return st
	}
	perCell := p.PerCell
	if perCell <= 0 {
		perCell = 16
	}
	workers := 1
	if p.Workers != 0 && p.Workers != 1 {
		workers = parallel.Workers(p.Workers)
	}
	buildStart := time.Now()

	// Grid geometry over the union of both datasets. A-boxes are expanded
	// by eps so that any qualifying pair shares at least one cell.
	bounds := boundsOf(a, workers).Union(boundsOf(b, workers)).Expand(eps)
	k := int(math.Max(1, math.Cbrt(float64(len(a))/perCell)))
	g := newCellGeometry(bounds, k)

	// Partition with replication. Following the original algorithm, each
	// partition materializes its entries (MBR + object index) so the
	// cell-local join runs over contiguous arrays — the very point of
	// partitioning, and the memory cost §4 of the paper holds against
	// space-oriented approaches.
	cellsA, incA := partitionGrid(a, eps, g, workers)
	cellsB, incB := partitionGrid(b, 0, g, workers)
	const entryBytes = 6*8 + 4
	st.ExtraBytes = (incA+incB)*entryBytes + int64(g.numCells())*2*24 // + slice headers
	st.BuildTime = time.Since(buildStart)

	// Probe the active cells (those with entries from both datasets). The
	// reference-point dedup makes every cell's sub-join independent, so the
	// cells are natural parallel slots.
	probeStart := time.Now()
	var active []int32
	for c := 0; c < g.numCells(); c++ {
		if len(cellsA[c]) > 0 && len(cellsB[c]) > 0 {
			active = append(active, int32(c))
		}
	}
	probeCell := func(c int32, st *Stats, emit func(Pair)) {
		for _, ea := range cellsA[c] {
			for _, eb := range cellsB[c] {
				st.BoxTests++
				if !ea.box.Intersects(eb.box) {
					continue
				}
				// Reference point: report only in the cell containing the
				// intersection's min corner, so each replicated pair is
				// emitted exactly once.
				if g.cellOf(bounds.Clamp(ea.box.Intersect(eb.box).Min)) != c {
					continue
				}
				st.Comparisons++
				if within(&a[ea.idx], &b[eb.idx], eps) {
					st.Results++
					emit(Pair{A: a[ea.idx].ID, B: b[eb.idx].ID})
				}
			}
		}
	}
	if workers <= 1 {
		for _, c := range active {
			probeCell(c, &st, emit)
		}
	} else {
		stats := make([]Stats, workers)
		parallel.Collect(workers, len(active), func(w, slot int, emit func(Pair)) {
			probeCell(active[slot], &stats[w], emit)
		}, emit)
		st.Merge(stats)
	}
	st.ProbeTime = time.Since(probeStart)
	return st
}

// gridEntry is one (object, cell) incidence of the PBSM partitioning: the
// object's filter box plus its index in the input slice.
type gridEntry struct {
	box geom.AABB
	idx int32
}

// boundsOf returns the union of the objects' boxes, splitting the reduction
// into per-worker partial unions for large inputs.
func boundsOf(objs []Object, workers int) geom.AABB {
	ranges := parallel.Split(len(objs), workers)
	if len(ranges) <= 1 {
		box := geom.EmptyAABB()
		for i := range objs {
			box = box.Union(objs[i].Box)
		}
		return box
	}
	partial := parallel.Map(workers, len(ranges), func(_, ri int) geom.AABB {
		box := geom.EmptyAABB()
		for i := ranges[ri].Lo; i < ranges[ri].Hi; i++ {
			box = box.Union(objs[i].Box)
		}
		return box
	})
	box := geom.EmptyAABB()
	for _, p := range partial {
		box = box.Union(p)
	}
	return box
}

// partitionGrid replicates every object's box (expanded by expand) into the
// grid cells it overlaps and returns the per-cell entry lists plus the
// incidence count. With several workers each partitions one contiguous block
// of the input into private cell lists, which are then concatenated per cell
// in block order — so the per-cell entry order (ascending object index) is
// identical to a serial partition.
func partitionGrid(objs []Object, expand float64, g *cellGeometry, workers int) ([][]gridEntry, int64) {
	ranges := parallel.Split(len(objs), workers)
	fill := func(r parallel.Range, cells [][]gridEntry) int64 {
		var inc int64
		for i := r.Lo; i < r.Hi; i++ {
			box := objs[i].Box.Expand(expand)
			g.forEach(box, func(c int32) {
				cells[c] = append(cells[c], gridEntry{box: box, idx: int32(i)})
				inc++
			})
		}
		return inc
	}
	if len(ranges) <= 1 {
		cells := make([][]gridEntry, g.numCells())
		var inc int64
		if len(ranges) == 1 {
			inc = fill(ranges[0], cells)
		}
		return cells, inc
	}
	parts := make([][][]gridEntry, len(ranges))
	incs := make([]int64, len(ranges))
	parallel.ForEach(workers, len(ranges), func(_, ri int) {
		cells := make([][]gridEntry, g.numCells())
		incs[ri] = fill(ranges[ri], cells)
		parts[ri] = cells
	})
	cells := make([][]gridEntry, g.numCells())
	var inc int64
	for _, v := range incs {
		inc += v
	}
	for c := range cells {
		n := 0
		for _, part := range parts {
			n += len(part[c])
		}
		if n == 0 {
			continue
		}
		merged := make([]gridEntry, 0, n)
		for _, part := range parts {
			merged = append(merged, part[c]...)
		}
		cells[c] = merged
	}
	return cells, inc
}

// cellGeometry is the minimal uniform-grid math PBSM needs; it holds no
// object lists itself.
type cellGeometry struct {
	bounds geom.AABB
	n      int
	cell   geom.Vec
}

func newCellGeometry(bounds geom.AABB, n int) *cellGeometry {
	size := bounds.Size()
	return &cellGeometry{
		bounds: bounds,
		n:      n,
		cell: geom.V(
			size.X/float64(n),
			size.Y/float64(n),
			size.Z/float64(n),
		),
	}
}

func (g *cellGeometry) numCells() int { return g.n * g.n * g.n }

func (g *cellGeometry) coord(v, min, cell float64) int {
	if cell == 0 {
		return 0
	}
	i := int(math.Floor((v - min) / cell))
	if i < 0 {
		return 0
	}
	if i >= g.n {
		return g.n - 1
	}
	return i
}

func (g *cellGeometry) cellOf(p geom.Vec) int32 {
	ix := g.coord(p.X, g.bounds.Min.X, g.cell.X)
	iy := g.coord(p.Y, g.bounds.Min.Y, g.cell.Y)
	iz := g.coord(p.Z, g.bounds.Min.Z, g.cell.Z)
	return int32(ix + g.n*(iy+g.n*iz))
}

func (g *cellGeometry) forEach(b geom.AABB, fn func(int32)) {
	x0 := g.coord(b.Min.X, g.bounds.Min.X, g.cell.X)
	x1 := g.coord(b.Max.X, g.bounds.Min.X, g.cell.X)
	y0 := g.coord(b.Min.Y, g.bounds.Min.Y, g.cell.Y)
	y1 := g.coord(b.Max.Y, g.bounds.Min.Y, g.cell.Y)
	z0 := g.coord(b.Min.Z, g.bounds.Min.Z, g.cell.Z)
	z1 := g.coord(b.Max.Z, g.bounds.Min.Z, g.cell.Z)
	for iz := z0; iz <= z1; iz++ {
		for iy := y0; iy <= y1; iy++ {
			for ix := x0; ix <= x1; ix++ {
				fn(int32(ix + g.n*(iy+g.n*iz)))
			}
		}
	}
}
