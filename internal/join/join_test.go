package join

import (
	"math/rand"
	"testing"

	"neurospatial/internal/geom"
)

// randObjects builds n random capsules in a cube.
func randObjects(rng *rand.Rand, n int, extent float64) []Object {
	out := make([]Object, n)
	for i := range out {
		a := geom.V(rng.Float64()*extent, rng.Float64()*extent, rng.Float64()*extent)
		dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).
			Normalize().Scale(rng.Float64()*extent/20 + 0.1)
		out[i] = Make(int32(i), geom.Seg(a, a.Add(dir), rng.Float64()*0.3+0.05))
	}
	return out
}

// oracle computes the exact join result by brute force.
func oracle(a, b []Object, eps float64) map[Pair]bool {
	out := make(map[Pair]bool)
	for i := range a {
		for j := range b {
			if a[i].Seg.WithinDist(b[j].Seg, eps) {
				out[Pair{A: a[i].ID, B: b[j].ID}] = true
			}
		}
	}
	return out
}

// runAndCheck runs alg and verifies the emitted pairs against the oracle.
func runAndCheck(t *testing.T, alg Algorithm, a, b []Object, eps float64) Stats {
	t.Helper()
	want := oracle(a, b, eps)
	got := make(map[Pair]int)
	st := alg.Join(a, b, eps, func(p Pair) { got[p]++ })
	for p, n := range got {
		if n != 1 {
			t.Fatalf("%s: pair %v emitted %d times", alg.Name(), p, n)
		}
		if !want[p] {
			t.Fatalf("%s: spurious pair %v", alg.Name(), p)
		}
	}
	for p := range want {
		if got[p] == 0 {
			t.Fatalf("%s: missed pair %v", alg.Name(), p)
		}
	}
	if st.Results != int64(len(want)) {
		t.Fatalf("%s: Results=%d, oracle=%d", alg.Name(), st.Results, len(want))
	}
	return st
}

func algorithms() []Algorithm {
	return []Algorithm{NestedLoop{}, SweepLine{}, PBSM{}, S3{}}
}

func TestAllAlgorithmsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	a := randObjects(rng, 300, 20)
	b := randObjects(rng, 280, 20)
	for _, eps := range []float64{0, 0.1, 0.5, 2} {
		for _, alg := range algorithms() {
			runAndCheck(t, alg, a, b, eps)
		}
	}
}

func TestSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := randObjects(rng, 200, 15)
	for _, alg := range algorithms() {
		runAndCheck(t, alg, a, a, 0.3)
	}
}

func TestEmptyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := randObjects(rng, 50, 10)
	for _, alg := range algorithms() {
		st := alg.Join(nil, a, 1, func(Pair) { t.Fatalf("%s emitted on empty A", alg.Name()) })
		if st.Results != 0 {
			t.Fatalf("%s: results on empty A", alg.Name())
		}
		st = alg.Join(a, nil, 1, func(Pair) { t.Fatalf("%s emitted on empty B", alg.Name()) })
		if st.Results != 0 {
			t.Fatalf("%s: results on empty B", alg.Name())
		}
	}
}

func TestDisjointClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := randObjects(rng, 150, 10)
	b := randObjects(rng, 150, 10)
	// Shift B far away: zero results, and smart algorithms should do few
	// comparisons.
	for i := range b {
		b[i].Seg.A = b[i].Seg.A.Add(geom.V(1000, 0, 0))
		b[i].Seg.B = b[i].Seg.B.Add(geom.V(1000, 0, 0))
		b[i].Box = b[i].Seg.Bounds()
	}
	for _, alg := range algorithms() {
		st := runAndCheck(t, alg, a, b, 1)
		if st.Results != 0 {
			t.Fatalf("%s: found pairs across 1000-unit gap", alg.Name())
		}
	}
	// S3 prunes at the root: almost no comparisons.
	st := S3{}.Join(a, b, 1, func(Pair) {})
	if st.Comparisons != 0 {
		t.Errorf("S3 did %d comparisons on disjoint data", st.Comparisons)
	}
}

func TestTouchingAtExactEps(t *testing.T) {
	// Two parallel unit segments exactly eps apart (surface to surface).
	a := []Object{Make(0, geom.Seg(geom.V(0, 0, 0), geom.V(1, 0, 0), 0.5))}
	b := []Object{Make(0, geom.Seg(geom.V(0, 2, 0), geom.V(1, 2, 0), 0.5))}
	// Surfaces are 2 - 0.5 - 0.5 = 1 apart.
	for _, alg := range algorithms() {
		got := 0
		alg.Join(a, b, 1.0, func(Pair) { got++ })
		if got != 1 {
			t.Errorf("%s: boundary pair at exact eps not found", alg.Name())
		}
		got = 0
		alg.Join(a, b, 0.999, func(Pair) { got++ })
		if got != 0 {
			t.Errorf("%s: pair found below eps", alg.Name())
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	a := randObjects(rng, 400, 15)
	b := randObjects(rng, 400, 15)
	eps := 0.4

	nl := NestedLoop{}.Join(a, b, eps, func(Pair) {})
	if nl.BoxTests != int64(len(a))*int64(len(b)) {
		t.Errorf("NestedLoop box tests = %d, want %d", nl.BoxTests, len(a)*len(b))
	}
	if nl.ExtraBytes != 0 {
		t.Errorf("NestedLoop reported %d extra bytes", nl.ExtraBytes)
	}

	sw := SweepLine{}.Join(a, b, eps, func(Pair) {})
	if sw.BoxTests >= nl.BoxTests {
		t.Errorf("sweep did not reduce box tests: %d vs %d", sw.BoxTests, nl.BoxTests)
	}
	if sw.ExtraBytes <= 0 || sw.ExtraBytes >= nl.BoxTests {
		t.Errorf("sweep extra bytes implausible: %d", sw.ExtraBytes)
	}

	pb := PBSM{}.Join(a, b, eps, func(Pair) {})
	if pb.Comparisons >= nl.Comparisons*4 {
		t.Errorf("PBSM comparisons exploded: %d vs NL %d", pb.Comparisons, nl.Comparisons)
	}
	if pb.ExtraBytes <= 0 {
		t.Error("PBSM reported no partition memory")
	}

	s3 := S3{}.Join(a, b, eps, func(Pair) {})
	if s3.NodePairs == 0 {
		t.Error("S3 reported no node pairs")
	}
	// All algorithms agree on result count.
	if sw.Results != nl.Results || pb.Results != nl.Results || s3.Results != nl.Results {
		t.Errorf("result counts disagree: nl=%d sw=%d pb=%d s3=%d",
			nl.Results, sw.Results, pb.Results, s3.Results)
	}
}

func TestPBSMPerCellParameter(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	a := randObjects(rng, 500, 15)
	b := randObjects(rng, 500, 15)
	coarse := PBSM{PerCell: 250}.Join(a, b, 0.3, func(Pair) {})
	fine := PBSM{PerCell: 4}.Join(a, b, 0.3, func(Pair) {})
	if coarse.Results != fine.Results {
		t.Fatalf("grid resolution changed results: %d vs %d", coarse.Results, fine.Results)
	}
	// Finer grids replicate more.
	if fine.ExtraBytes <= coarse.ExtraBytes {
		t.Errorf("finer grid should use more memory: %d vs %d", fine.ExtraBytes, coarse.ExtraBytes)
	}
}

func TestMakeCachesBox(t *testing.T) {
	s := geom.Seg(geom.V(0, 0, 0), geom.V(1, 2, 3), 0.5)
	o := Make(7, s)
	if o.ID != 7 || o.Box != s.Bounds() {
		t.Errorf("Make = %+v", o)
	}
	if (Stats{BuildTime: 2, ProbeTime: 3}).TotalTime() != 5 {
		t.Error("TotalTime wrong")
	}
}
