package morphology

import (
	"math"
	"testing"

	"neurospatial/internal/geom"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(geom.V(0, 0, 0), DefaultParams(), 42)
	b := Generate(geom.V(0, 0, 0), DefaultParams(), 42)
	if len(a.Branches) != len(b.Branches) {
		t.Fatalf("branch counts differ: %d vs %d", len(a.Branches), len(b.Branches))
	}
	for i := range a.Branches {
		ba, bb := a.Branches[i], b.Branches[i]
		if len(ba.Points) != len(bb.Points) {
			t.Fatalf("branch %d point counts differ", i)
		}
		for j := range ba.Points {
			if ba.Points[j] != bb.Points[j] || ba.Radii[j] != bb.Radii[j] {
				t.Fatalf("branch %d point %d differs", i, j)
			}
		}
	}
	c := Generate(geom.V(0, 0, 0), DefaultParams(), 43)
	if len(c.Branches) == len(a.Branches) && samePoints(a, c) {
		t.Error("different seeds produced identical morphologies")
	}
}

func samePoints(a, c *Morphology) bool {
	for i := range a.Branches {
		if len(a.Branches[i].Points) != len(c.Branches[i].Points) {
			return false
		}
		for j := range a.Branches[i].Points {
			if a.Branches[i].Points[j] != c.Branches[i].Points[j] {
				return false
			}
		}
	}
	return true
}

func TestTopologyInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m := Generate(geom.V(0, 0, 0), DefaultParams(), seed)
		if len(m.Branches) < 6 {
			t.Fatalf("seed %d: only %d branches (want >= stems)", seed, len(m.Branches))
		}
		stems := 0
		for i, b := range m.Branches {
			if b.ID != i {
				t.Fatalf("seed %d: branch %d has ID %d", seed, i, b.ID)
			}
			if b.Parent >= b.ID {
				t.Fatalf("seed %d: branch %d has non-preceding parent %d", seed, i, b.Parent)
			}
			if b.Parent == -1 {
				stems++
				if b.Order != 0 {
					t.Fatalf("seed %d: stem %d has order %d", seed, i, b.Order)
				}
			} else {
				p := m.Branches[b.Parent]
				if b.Order != p.Order+1 {
					t.Fatalf("seed %d: branch %d order %d but parent order %d", seed, i, b.Order, p.Order)
				}
				// Child starts where a parent point is.
				last := p.Points[len(p.Points)-1]
				if b.Points[0] != last {
					// bifurcations occur mid-extension: child root must equal
					// the parent's final point because growth stops at splits.
					t.Fatalf("seed %d: branch %d does not start at parent tip", seed, i)
				}
			}
			if len(b.Points) != len(b.Radii) {
				t.Fatalf("seed %d: branch %d points/radii mismatch", seed, i)
			}
			if len(b.Points) < 2 {
				t.Fatalf("seed %d: branch %d has %d points", seed, i, len(b.Points))
			}
			for _, r := range b.Radii {
				if r <= 0 {
					t.Fatalf("seed %d: nonpositive radius", seed)
				}
			}
		}
		if stems != DefaultParams().NumDendrites+1 {
			t.Fatalf("seed %d: %d stems, want %d", seed, stems, DefaultParams().NumDendrites+1)
		}
	}
}

func TestBranchKinds(t *testing.T) {
	m := Generate(geom.V(0, 0, 0), DefaultParams(), 5)
	var hasAxon, hasDendrite bool
	for _, b := range m.Branches {
		switch b.Kind {
		case KindAxon:
			hasAxon = true
		case KindDendrite:
			hasDendrite = true
		case KindSoma:
			t.Error("branch with soma kind")
		}
	}
	if !hasAxon || !hasDendrite {
		t.Errorf("axon=%v dendrite=%v", hasAxon, hasDendrite)
	}
	if KindSoma.String() != "soma" || KindAxon.String() != "axon" || KindDendrite.String() != "dendrite" {
		t.Error("kind names wrong")
	}
}

func TestNoAxonParam(t *testing.T) {
	p := DefaultParams()
	p.IncludeAxon = false
	m := Generate(geom.V(0, 0, 0), p, 1)
	for _, b := range m.Branches {
		if b.Kind == KindAxon {
			t.Fatal("axon generated despite IncludeAxon=false")
		}
	}
}

func TestGeometryPlausible(t *testing.T) {
	p := DefaultParams()
	m := Generate(geom.V(10, 20, 30), p, 7)
	if m.Soma.A != geom.V(10, 20, 30) || m.Soma.Radius != p.SomaRadius {
		t.Errorf("soma = %v", m.Soma)
	}
	bounds := m.Bounds()
	// The morphology must extend well beyond the soma but stay within the
	// total budget (max extent * 1.25 + soma).
	if bounds.Size().Len() < p.SomaRadius*4 {
		t.Errorf("morphology implausibly small: %v", bounds)
	}
	maxReach := p.AxonExtent*1.25 + p.SomaRadius + p.StemRadius
	for _, b := range m.Branches {
		for _, pt := range b.Points {
			if pt.Dist(m.Soma.A) > maxReach {
				t.Fatalf("point %v exceeds max reach %v", pt, maxReach)
			}
			if !pt.IsFinite() {
				t.Fatal("non-finite point")
			}
		}
	}
	// Steps are at most StepLength (plus float slack).
	for _, b := range m.Branches {
		for i := 0; i+1 < len(b.Points); i++ {
			if d := b.Points[i].Dist(b.Points[i+1]); d > p.StepLength+1e-9 {
				t.Fatalf("step length %v exceeds %v", d, p.StepLength)
			}
		}
	}
}

func TestSegmentsAndLength(t *testing.T) {
	m := Generate(geom.V(0, 0, 0), DefaultParams(), 3)
	total := 1 // soma
	for _, b := range m.Branches {
		if b.NumSegments() != len(b.Points)-1 {
			t.Fatalf("NumSegments = %d for %d points", b.NumSegments(), len(b.Points))
		}
		total += b.NumSegments()
		var l float64
		for i := 0; i < b.NumSegments(); i++ {
			s := b.Segment(i)
			l += s.Length()
			if s.Radius <= 0 {
				t.Fatal("segment with nonpositive radius")
			}
		}
		if math.Abs(l-b.Length()) > 1e-9 {
			t.Fatalf("Length() = %v, segment sum = %v", b.Length(), l)
		}
	}
	if m.NumSegments() != total {
		t.Errorf("NumSegments = %d, want %d", m.NumSegments(), total)
	}
}

func TestChildrenTerminalsPath(t *testing.T) {
	m := Generate(geom.V(0, 0, 0), DefaultParams(), 11)
	stems := m.Children(-1)
	if len(stems) != DefaultParams().NumDendrites+1 {
		t.Fatalf("Children(-1) = %d", len(stems))
	}
	terms := m.Terminals()
	if len(terms) == 0 {
		t.Fatal("no terminals")
	}
	for _, id := range terms {
		if len(m.Children(id)) != 0 {
			t.Fatalf("terminal %d has children", id)
		}
		path := m.PathToRoot(id)
		if path[0] != id {
			t.Fatal("path does not start at the branch")
		}
		last := path[len(path)-1]
		if m.Branches[last].Parent != -1 {
			t.Fatal("path does not end at a stem")
		}
		// Path is strictly decreasing in ID (parents precede children).
		for i := 0; i+1 < len(path); i++ {
			if path[i] <= path[i+1] {
				t.Fatal("path not strictly decreasing")
			}
		}
	}
	// Bifurcating branches have exactly 2 children in this generator.
	for _, b := range m.Branches {
		if n := len(m.Children(b.ID)); n != 0 && n != 2 {
			t.Fatalf("branch %d has %d children", b.ID, n)
		}
	}
}

func TestSanitizeDefaults(t *testing.T) {
	m := Generate(geom.V(0, 0, 0), Params{}, 1)
	// Zero params behave like DefaultParams (including the axon).
	var hasAxon bool
	for _, b := range m.Branches {
		if b.Kind == KindAxon {
			hasAxon = true
		}
	}
	if !hasAxon {
		t.Error("zero Params did not default to including an axon")
	}
	if m.Soma.Radius != DefaultParams().SomaRadius {
		t.Errorf("soma radius = %v", m.Soma.Radius)
	}
}

func TestTortuosityControlsJaggedness(t *testing.T) {
	straight := DefaultParams()
	straight.Tortuosity = 0.05
	straight.BifurcationProb = 1e-9
	jagged := DefaultParams()
	jagged.Tortuosity = 0.8
	jagged.BifurcationProb = 1e-9

	s := Generate(geom.V(0, 0, 0), straight, 9)
	j := Generate(geom.V(0, 0, 0), jagged, 9)
	// Straightness = end-to-end distance / path length, averaged over stems.
	if ms, mj := meanStraightness(s), meanStraightness(j); ms <= mj {
		t.Errorf("straightness: low-tortuosity %v <= high-tortuosity %v", ms, mj)
	}
}

func meanStraightness(m *Morphology) float64 {
	var sum float64
	var n int
	for _, b := range m.Branches {
		l := b.Length()
		if l == 0 {
			continue
		}
		sum += b.Points[0].Dist(b.Points[len(b.Points)-1]) / l
		n++
	}
	return sum / float64(n)
}
