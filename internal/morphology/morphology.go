// Package morphology generates synthetic neuron morphologies.
//
// The Blue Brain Project datasets the paper demonstrates on are proprietary,
// so this package is the substitution substrate called out in DESIGN.md: it
// produces branching capsule-chain morphologies whose geometric statistics
// (elongated, tortuous, bifurcating branches of tapering thickness densely
// interleaved in tissue) match the properties the three demonstrated
// techniques depend on:
//
//   - dense, overlapping elongated elements defeat R-tree MBRs (what FLAT
//     addresses),
//   - jagged irregular paths defeat straight-line query-location
//     extrapolation (what SCOUT addresses), and
//   - branches of different cells passing within a synaptic gap of each other
//     create the distance-join workload (what TOUCH addresses).
//
// Every morphology carries its ground-truth branch topology, which the SCOUT
// experiments use to script walkthroughs along real branches and to verify
// structure identification.
package morphology

import (
	"fmt"
	"math"
	"math/rand"

	"neurospatial/internal/geom"
)

// BranchKind distinguishes the neurite types of a morphology.
type BranchKind uint8

// Branch kinds. Axons are long and thin and project far from the soma;
// dendrites are shorter, thicker and bushier — the generator follows the same
// convention.
const (
	KindSoma BranchKind = iota
	KindDendrite
	KindAxon
)

// String returns the lowercase kind name.
func (k BranchKind) String() string {
	switch k {
	case KindSoma:
		return "soma"
	case KindDendrite:
		return "dendrite"
	case KindAxon:
		return "axon"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Branch is one unbranched neurite section: a chain of sample points between
// two topological events (soma→bifurcation, bifurcation→bifurcation, or
// bifurcation→terminal).
type Branch struct {
	// ID is the branch's index within its morphology.
	ID int
	// Parent is the ID of the branch this one bifurcated from, or -1 for
	// branches rooted at the soma.
	Parent int
	// Kind is the neurite type.
	Kind BranchKind
	// Order is the centrifugal branch order: 0 for stems, parent.Order+1
	// otherwise.
	Order int
	// Points are the sample points along the branch. The first point joins
	// the parent branch (or the soma surface).
	Points []geom.Vec
	// Radii holds the branch thickness at each point; len(Radii) ==
	// len(Points).
	Radii []float64
}

// NumSegments returns the number of capsule segments of the branch.
func (b *Branch) NumSegments() int {
	if len(b.Points) < 2 {
		return 0
	}
	return len(b.Points) - 1
}

// Segment returns the i-th capsule of the branch. The capsule radius is the
// mean of the two endpoint radii.
func (b *Branch) Segment(i int) geom.Segment {
	return geom.Seg(b.Points[i], b.Points[i+1], (b.Radii[i]+b.Radii[i+1])/2)
}

// Length returns the total path length of the branch.
func (b *Branch) Length() float64 {
	var l float64
	for i := 0; i+1 < len(b.Points); i++ {
		l += b.Points[i].Dist(b.Points[i+1])
	}
	return l
}

// Morphology is one synthetic neuron: a soma sphere plus a tree of branches.
type Morphology struct {
	// Soma is the cell body, a degenerate capsule (sphere).
	Soma geom.Segment
	// Branches holds all neurite sections, indexed by Branch.ID. Parents
	// always precede children.
	Branches []*Branch
}

// NumSegments returns the total number of capsule segments including the soma.
func (m *Morphology) NumSegments() int {
	n := 1
	for _, b := range m.Branches {
		n += b.NumSegments()
	}
	return n
}

// Bounds returns the bounding box of the whole morphology.
func (m *Morphology) Bounds() geom.AABB {
	box := m.Soma.Bounds()
	for _, b := range m.Branches {
		for i := 0; i < b.NumSegments(); i++ {
			box = box.Union(b.Segment(i).Bounds())
		}
	}
	return box
}

// Children returns the IDs of the branches whose Parent is id (-1 for stems).
func (m *Morphology) Children(id int) []int {
	var out []int
	for _, b := range m.Branches {
		if b.Parent == id {
			out = append(out, b.ID)
		}
	}
	return out
}

// Terminals returns the IDs of branches with no children (the branch tips a
// walkthrough can start or end at).
func (m *Morphology) Terminals() []int {
	hasChild := make([]bool, len(m.Branches))
	for _, b := range m.Branches {
		if b.Parent >= 0 {
			hasChild[b.Parent] = true
		}
	}
	var out []int
	for _, b := range m.Branches {
		if !hasChild[b.ID] {
			out = append(out, b.ID)
		}
	}
	return out
}

// PathToRoot returns the branch IDs from branch id up to (and including) its
// stem branch.
func (m *Morphology) PathToRoot(id int) []int {
	var out []int
	for id >= 0 {
		out = append(out, id)
		id = m.Branches[id].Parent
	}
	return out
}

// Params controls the generator. All lengths are in micrometers, matching the
// scale of cortical neurons, so densities derived from these defaults land in
// a biologically plausible regime.
type Params struct {
	// SomaRadius is the cell-body radius. Default 8.
	SomaRadius float64
	// NumDendrites is the number of dendrite stems leaving the soma.
	// Default 5.
	NumDendrites int
	// IncludeAxon adds one axon stem. Default true (set via DefaultParams).
	IncludeAxon bool
	// StepLength is the sample-point spacing along branches. Default 4.
	StepLength float64
	// DendriteExtent is the mean total path length from soma to a dendrite
	// tip. Default 150.
	DendriteExtent float64
	// AxonExtent is the mean total path length from soma to an axon tip.
	// Default 400.
	AxonExtent float64
	// Tortuosity in [0,1) controls how jagged branches are: the direction at
	// each step is a blend of the previous direction and a random unit
	// vector with weight Tortuosity. Default 0.35.
	Tortuosity float64
	// BifurcationProb is the per-step probability that a branch splits.
	// Default 0.045.
	BifurcationProb float64
	// MaxBranchOrder caps the bifurcation depth. Default 5.
	MaxBranchOrder int
	// StemRadius is the neurite thickness at the soma. Default 1.2.
	StemRadius float64
	// TaperPerStep multiplies the radius each step (<1 tapers). Default
	// 0.985, floored at MinRadius.
	TaperPerStep float64
	// MinRadius floors the taper. Default 0.2.
	MinRadius float64
}

// DefaultParams returns the parameter set used throughout the experiments.
func DefaultParams() Params {
	return Params{
		SomaRadius:      8,
		NumDendrites:    5,
		IncludeAxon:     true,
		StepLength:      4,
		DendriteExtent:  150,
		AxonExtent:      400,
		Tortuosity:      0.35,
		BifurcationProb: 0.045,
		MaxBranchOrder:  5,
		StemRadius:      1.2,
		TaperPerStep:    0.985,
		MinRadius:       0.2,
	}
}

// sanitize fills zero values with defaults so a partially specified Params is
// usable.
func (p Params) sanitize() Params {
	d := DefaultParams()
	if p.SomaRadius <= 0 {
		p.SomaRadius = d.SomaRadius
	}
	if p.NumDendrites <= 0 {
		p.NumDendrites = d.NumDendrites
	}
	if p.StepLength <= 0 {
		p.StepLength = d.StepLength
	}
	if p.DendriteExtent <= 0 {
		p.DendriteExtent = d.DendriteExtent
	}
	if p.AxonExtent <= 0 {
		p.AxonExtent = d.AxonExtent
	}
	if p.Tortuosity < 0 || p.Tortuosity >= 1 {
		p.Tortuosity = d.Tortuosity
	}
	if p.BifurcationProb <= 0 {
		p.BifurcationProb = d.BifurcationProb
	}
	if p.MaxBranchOrder <= 0 {
		p.MaxBranchOrder = d.MaxBranchOrder
	}
	if p.StemRadius <= 0 {
		p.StemRadius = d.StemRadius
	}
	if p.TaperPerStep <= 0 || p.TaperPerStep > 1 {
		p.TaperPerStep = d.TaperPerStep
	}
	if p.MinRadius <= 0 {
		p.MinRadius = d.MinRadius
	}
	return p
}

// Generate builds one morphology with its soma at center, deterministically
// from the given seed.
func Generate(center geom.Vec, params Params, seed int64) *Morphology {
	p := params.sanitize()
	rng := rand.New(rand.NewSource(seed))
	m := &Morphology{Soma: geom.Sphere(center, p.SomaRadius)}

	type stem struct {
		kind   BranchKind
		extent float64
	}
	stems := make([]stem, 0, p.NumDendrites+1)
	for i := 0; i < p.NumDendrites; i++ {
		stems = append(stems, stem{KindDendrite, p.DendriteExtent})
	}
	includeAxon := p.IncludeAxon
	if params == (Params{}) {
		// A fully zero Params means "all defaults", which include the axon.
		includeAxon = DefaultParams().IncludeAxon
	}
	if includeAxon {
		stems = append(stems, stem{KindAxon, p.AxonExtent})
	}

	for _, st := range stems {
		dir := randUnit(rng)
		start := center.Add(dir.Scale(p.SomaRadius))
		budget := st.extent * (0.75 + rng.Float64()*0.5)
		growBranch(m, rng, p, st.kind, -1, 0, start, dir, p.StemRadius, budget)
	}
	return m
}

// growBranch extrudes one branch and recursively grows children at
// bifurcations. budget is the remaining path length to the tips.
func growBranch(m *Morphology, rng *rand.Rand, p Params, kind BranchKind,
	parent, order int, start, dir geom.Vec, radius, budget float64) {

	b := &Branch{
		ID:     len(m.Branches),
		Parent: parent,
		Kind:   kind,
		Order:  order,
		Points: []geom.Vec{start},
		Radii:  []float64{radius},
	}
	m.Branches = append(m.Branches, b)

	pos := start
	for budget > 0 {
		// Blend the previous direction with a random perturbation: momentum
		// keeps branches extended, the perturbation makes them jagged.
		dir = dir.Scale(1 - p.Tortuosity).Add(randUnit(rng).Scale(p.Tortuosity)).Normalize()
		step := p.StepLength
		if step > budget {
			step = budget
		}
		pos = pos.Add(dir.Scale(step))
		radius = math.Max(p.MinRadius, radius*p.TaperPerStep)
		b.Points = append(b.Points, pos)
		b.Radii = append(b.Radii, radius)
		budget -= step

		if budget > p.StepLength*2 && order < p.MaxBranchOrder &&
			rng.Float64() < p.BifurcationProb {
			// Bifurcate: split the remaining budget between two children
			// leaving at ±ang around the current direction.
			axis := randUnit(rng)
			perp := dir.Cross(axis).Normalize()
			if perp.Len2() == 0 { // axis parallel to dir; pick any other
				perp = dir.Cross(geom.V(1, 0, 0)).Normalize()
				if perp.Len2() == 0 {
					perp = dir.Cross(geom.V(0, 1, 0)).Normalize()
				}
			}
			ang := 0.4 + rng.Float64()*0.5 // 23°..52° half-angle
			d1 := dir.Scale(math.Cos(ang)).Add(perp.Scale(math.Sin(ang))).Normalize()
			d2 := dir.Scale(math.Cos(ang)).Add(perp.Scale(-math.Sin(ang))).Normalize()
			split := 0.35 + rng.Float64()*0.3
			// Rall's power rule thins children relative to the parent.
			childR := math.Max(p.MinRadius, radius*0.8)
			growBranch(m, rng, p, kind, b.ID, order+1, pos, d1, childR, budget*split)
			growBranch(m, rng, p, kind, b.ID, order+1, pos, d2, childR, budget*(1-split))
			return
		}
	}
}

// randUnit returns a uniformly distributed unit vector.
func randUnit(rng *rand.Rand) geom.Vec {
	for {
		v := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		if l := v.Len(); l > 1e-9 {
			return v.Scale(1 / l)
		}
	}
}
