// Package geom provides the three-dimensional geometric primitives that every
// other package in this repository builds on: vectors, axis-aligned bounding
// boxes, line segments and capsules (segments with a radius, the shape used to
// model neuron branches), together with the exact distance computations the
// spatial join needs.
//
// All types are plain value types with no hidden state so they can be embedded
// in large slices without pointer chasing; this matters because circuits
// routinely contain tens of millions of segments.
package geom

import (
	"fmt"
	"math"
)

// Vec is a point or direction in 3-D space.
type Vec struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec.
func V(x, y, z float64) Vec { return Vec{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product of v and w.
func (v Vec) Cross(w Vec) Vec {
	return Vec{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns the squared Euclidean length of v.
func (v Vec) Len2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec) Dist2(w Vec) float64 { return v.Sub(w).Len2() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged so callers never divide by zero.
func (v Vec) Normalize() Vec {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Lerp linearly interpolates between v (t=0) and w (t=1).
func (v Vec) Lerp(w Vec, t float64) Vec {
	return Vec{
		v.X + (w.X-v.X)*t,
		v.Y + (w.Y-v.Y)*t,
		v.Z + (w.Z-v.Z)*t,
	}
}

// Min returns the component-wise minimum of v and w.
func (v Vec) Min(w Vec) Vec {
	return Vec{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec) Max(w Vec) Vec {
	return Vec{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Axis returns the i-th component (0=X, 1=Y, 2=Z). It panics on any other i,
// matching slice indexing semantics.
func (v Vec) Axis(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	case 2:
		return v.Z
	}
	panic(fmt.Sprintf("geom: axis index %d out of range", i))
}

// WithAxis returns a copy of v with the i-th component replaced by x.
func (v Vec) WithAxis(i int, x float64) Vec {
	switch i {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	case 2:
		v.Z = x
	default:
		panic(fmt.Sprintf("geom: axis index %d out of range", i))
	}
	return v
}

// IsFinite reports whether all components are finite numbers.
func (v Vec) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// String formats the vector for diagnostics.
func (v Vec) String() string { return fmt.Sprintf("(%.4g, %.4g, %.4g)", v.X, v.Y, v.Z) }
