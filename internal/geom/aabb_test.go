package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randBox(rng *rand.Rand, scale float64) AABB {
	return Box(randVec(rng, scale), randVec(rng, scale))
}

func TestEmptyAABB(t *testing.T) {
	e := EmptyAABB()
	if !e.IsEmpty() {
		t.Fatal("EmptyAABB not empty")
	}
	if e.Volume() != 0 || e.SurfaceArea() != 0 || e.Margin() != 0 {
		t.Error("empty box has nonzero measures")
	}
	b := Box(V(0, 0, 0), V(1, 1, 1))
	if got := e.Union(b); got != b {
		t.Errorf("empty union = %v", got)
	}
	if got := b.Union(e); got != b {
		t.Errorf("union empty = %v", got)
	}
}

func TestBoxConstructionSwapsCorners(t *testing.T) {
	b := Box(V(1, -2, 3), V(-1, 2, -3))
	if b.Min != V(-1, -2, -3) || b.Max != V(1, 2, 3) {
		t.Errorf("Box = %v", b)
	}
	if b.IsEmpty() {
		t.Error("valid box reported empty")
	}
}

func TestBoxAround(t *testing.T) {
	b := BoxAround(V(1, 2, 3), 2)
	if b.Min != V(-1, 0, 1) || b.Max != V(3, 4, 5) {
		t.Errorf("BoxAround = %v", b)
	}
	if b.Center() != V(1, 2, 3) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.Volume() != 64 {
		t.Errorf("Volume = %v", b.Volume())
	}
	if b.SurfaceArea() != 96 {
		t.Errorf("SurfaceArea = %v", b.SurfaceArea())
	}
	if b.Margin() != 12 {
		t.Errorf("Margin = %v", b.Margin())
	}
}

func TestIntersectsTouchingBoxes(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	b := Box(V(1, 0, 0), V(2, 1, 1)) // shares a face
	if !a.Intersects(b) {
		t.Error("face-touching boxes must intersect")
	}
	c := Box(V(1+1e-9, 0, 0), V(2, 1, 1))
	if a.Intersects(c) {
		t.Error("separated boxes must not intersect")
	}
}

func TestContains(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 2, 2))
	for _, p := range []Vec{V(0, 0, 0), V(2, 2, 2), V(1, 1, 1), V(0, 2, 1)} {
		if !b.Contains(p) {
			t.Errorf("Contains(%v) = false", p)
		}
	}
	for _, p := range []Vec{V(-0.1, 1, 1), V(1, 2.1, 1), V(3, 3, 3)} {
		if b.Contains(p) {
			t.Errorf("Contains(%v) = true", p)
		}
	}
	if !b.ContainsBox(Box(V(0.5, 0.5, 0.5), V(1.5, 1.5, 1.5))) {
		t.Error("ContainsBox inner = false")
	}
	if b.ContainsBox(Box(V(0.5, 0.5, 0.5), V(2.5, 1.5, 1.5))) {
		t.Error("ContainsBox overlapping = true")
	}
	if !b.ContainsBox(EmptyAABB()) {
		t.Error("every box must contain the empty box")
	}
}

func TestExpandShrink(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 2, 2))
	e := b.Expand(1)
	if e.Min != V(-1, -1, -1) || e.Max != V(3, 3, 3) {
		t.Errorf("Expand = %v", e)
	}
	s := b.Expand(-1.5)
	if !s.IsEmpty() {
		t.Errorf("over-shrunk box should be empty: %v", s)
	}
}

func TestDist2Point(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	if d := b.Dist2Point(V(0.5, 0.5, 0.5)); d != 0 {
		t.Errorf("inside dist = %v", d)
	}
	if d := b.Dist2Point(V(2, 0.5, 0.5)); d != 1 {
		t.Errorf("face dist = %v", d)
	}
	if d := b.Dist2Point(V(2, 2, 2)); !almostEq(d, 3, 1e-12) {
		t.Errorf("corner dist = %v", d)
	}
}

func TestDist2Box(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	b := Box(V(3, 0, 0), V(4, 1, 1))
	if d := a.Dist2Box(b); d != 4 {
		t.Errorf("axis dist = %v", d)
	}
	if d := a.Dist2Box(a); d != 0 {
		t.Errorf("self dist = %v", d)
	}
	c := Box(V(2, 2, 2), V(3, 3, 3))
	if d := a.Dist2Box(c); !almostEq(d, 3, 1e-12) {
		t.Errorf("corner dist = %v", d)
	}
}

func TestOctant(t *testing.T) {
	b := Box(V(0, 0, 0), V(2, 2, 2))
	var total float64
	for i := 0; i < 8; i++ {
		o := b.Octant(i)
		if o.Volume() != 1 {
			t.Errorf("octant %d volume = %v", i, o.Volume())
		}
		if !b.ContainsBox(o) {
			t.Errorf("octant %d escapes parent", i)
		}
		total += o.Volume()
	}
	if total != b.Volume() {
		t.Errorf("octants cover %v of %v", total, b.Volume())
	}
}

func TestEnlargement(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	if e := a.Enlargement(a); e != 0 {
		t.Errorf("self enlargement = %v", e)
	}
	b := Box(V(0, 0, 0), V(2, 1, 1))
	if e := a.Enlargement(b); e != 1 {
		t.Errorf("enlargement = %v", e)
	}
}

// Property: union contains both operands, intersection is contained in both.
func TestQuickUnionIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a, b := randBox(rng, 50), randBox(rng, 50)
		u := a.Union(b)
		if !u.ContainsBox(a) || !u.ContainsBox(b) {
			t.Fatalf("union does not contain operands: %v %v -> %v", a, b, u)
		}
		x := a.Intersect(b)
		if !x.IsEmpty() && (!a.ContainsBox(x) || !b.ContainsBox(x)) {
			t.Fatalf("intersection escapes operands: %v %v -> %v", a, b, x)
		}
		if a.Intersects(b) != !x.IsEmpty() {
			t.Fatalf("Intersects disagrees with Intersect: %v %v", a, b)
		}
	}
}

// Property: Dist2Box is zero iff boxes intersect, and symmetric.
func TestQuickDist2BoxConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		a, b := randBox(rng, 20), randBox(rng, 20)
		d := a.Dist2Box(b)
		if (d == 0) != a.Intersects(b) {
			t.Fatalf("Dist2Box=%v but Intersects=%v for %v %v", d, a.Intersects(b), a, b)
		}
		if d != b.Dist2Box(a) {
			t.Fatalf("Dist2Box asymmetric for %v %v", a, b)
		}
	}
}

// Property: Dist2Point equals distance to Clamp(p).
func TestQuickClampDist(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		b := randBox(rng, 30)
		p := randVec(rng, 60)
		got := b.Dist2Point(p)
		want := p.Dist2(b.Clamp(p))
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("Dist2Point=%v Clamp-dist=%v for %v %v", got, want, b, p)
		}
	}
}

// Property: Dist2Point is zero iff the box contains the point — the
// correctness hinge of the engine's kNN and within-distance kinds (a hit at
// distance zero must be exactly a stabbing hit).
func TestQuickDist2PointZeroIffContains(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		b := randBox(rng, 20)
		p := randVec(rng, 40)
		if (b.Dist2Point(p) == 0) != b.Contains(p) {
			t.Fatalf("Dist2Point=%v but Contains=%v for %v %v", b.Dist2Point(p), b.Contains(p), b, p)
		}
		// Points sampled inside the box are at distance zero, including the
		// corners themselves.
		inside := b.Clamp(randVec(rng, 40))
		if b.Dist2Point(inside) != 0 {
			t.Fatalf("clamped point %v at distance %v from %v", inside, b.Dist2Point(inside), b)
		}
	}
	// Exact boundary: a face point is contained, distance zero.
	b := Box(V(0, 0, 0), V(2, 3, 4))
	for _, p := range []Vec{V(0, 1, 1), V(2, 3, 4), V(1, 0, 4)} {
		if d := b.Dist2Point(p); d != 0 || !b.Contains(p) {
			t.Fatalf("boundary point %v: dist %v contains %v", p, d, b.Contains(p))
		}
	}
}

// Property: Dist2Box of a degenerate (point) box equals Dist2Point, and
// Dist2Box lower-bounds the squared distance between any pair of contained
// points — the pruning-bound property the kNN scans rely on.
func TestQuickDist2BoxPointConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		b := randBox(rng, 20)
		p := randVec(rng, 40)
		pt := Box(p, p)
		if got, want := b.Dist2Box(pt), b.Dist2Point(p); math.Abs(got-want) > 1e-12*(1+want) {
			t.Fatalf("Dist2Box(point)=%v Dist2Point=%v for %v %v", got, want, b, p)
		}
		// Lower bound: for sampled points inside each box, the pairwise
		// squared distance is never below Dist2Box.
		o := randBox(rng, 20)
		d := b.Dist2Box(o)
		pi, pj := b.Clamp(randVec(rng, 40)), o.Clamp(randVec(rng, 40))
		if pd := pi.Dist2(pj); pd < d-1e-9*(1+d) {
			t.Fatalf("contained points at %v below Dist2Box=%v for %v %v", pd, d, b, o)
		}
	}
	// Exactly touching boxes are at distance zero (face, edge and corner).
	a := Box(V(0, 0, 0), V(1, 1, 1))
	for _, o := range []AABB{
		Box(V(1, 0, 0), V(2, 1, 1)),
		Box(V(1, 1, 0), V(2, 2, 1)),
		Box(V(1, 1, 1), V(2, 2, 2)),
	} {
		if d := a.Dist2Box(o); d != 0 {
			t.Fatalf("touching boxes %v %v at distance %v", a, o, d)
		}
	}
}

func TestTranslateAndExtendPoint(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	if got := b.Translate(V(2, -1, 3)); got != Box(V(2, -1, 3), V(3, 0, 4)) {
		t.Errorf("Translate = %v", got)
	}
	if got := b.ExtendPoint(V(5, 0.5, 0.5)); got != Box(V(0, 0, 0), V(5, 1, 1)) {
		t.Errorf("ExtendPoint = %v", got)
	}
	if got := EmptyAABB().ExtendPoint(V(1, 2, 3)); got != Box(V(1, 2, 3), V(1, 2, 3)) {
		t.Errorf("ExtendPoint on empty = %v", got)
	}
	if got := b.Overlap(Box(V(0.5, 0, 0), V(1.5, 1, 1))); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("Overlap = %v", got)
	}
}
