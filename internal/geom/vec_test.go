package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasicOps(t *testing.T) {
	v := V(1, 2, 3)
	w := V(4, -5, 6)
	if got := v.Add(w); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := V(1, 0, 0).Cross(V(0, 1, 0)); got != V(0, 0, 1) {
		t.Errorf("Cross = %v", got)
	}
	if got := V(3, 4, 0).Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	if got := V(3, 4, 0).Len2(); got != 25 {
		t.Errorf("Len2 = %v", got)
	}
	if got := V(1, 1, 1).Dist(V(1, 1, 3)); got != 2 {
		t.Errorf("Dist = %v", got)
	}
}

func TestVecNormalize(t *testing.T) {
	n := V(0, 3, 4).Normalize()
	if !almostEq(n.Len(), 1, 1e-12) {
		t.Errorf("normalized length = %v", n.Len())
	}
	if z := (Vec{}).Normalize(); z != (Vec{}) {
		t.Errorf("zero vector normalize = %v, want zero", z)
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, -10, 4)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != V(5, -5, 2) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestVecMinMax(t *testing.T) {
	v, w := V(1, 5, -2), V(3, -4, 0)
	if got := v.Min(w); got != V(1, -4, -2) {
		t.Errorf("Min = %v", got)
	}
	if got := v.Max(w); got != V(3, 5, 0) {
		t.Errorf("Max = %v", got)
	}
}

func TestVecAxis(t *testing.T) {
	v := V(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Axis(i); got != want {
			t.Errorf("Axis(%d) = %v, want %v", i, got, want)
		}
	}
	if got := v.WithAxis(1, -1); got != V(7, -1, 9) {
		t.Errorf("WithAxis = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Axis(3) did not panic")
		}
	}()
	v.Axis(3)
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

// Property: dot product is symmetric and bilinear in the first argument.
func TestQuickDotSymmetric(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() {
			return true
		}
		// Component products that overflow produce Inf-Inf = NaN; that is a
		// property of float64, not of Dot, so restrict to the safe range.
		if a.Len2() > 1e150 || b.Len2() > 1e150 {
			return true
		}
		return a.Dot(b) == b.Dot(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cross product is orthogonal to both operands.
func TestQuickCrossOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		b := V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		c := a.Cross(b)
		scale := a.Len() * b.Len() * c.Len()
		if scale == 0 {
			continue
		}
		if math.Abs(c.Dot(a))/scale > 1e-12 || math.Abs(c.Dot(b))/scale > 1e-12 {
			t.Fatalf("cross not orthogonal: a=%v b=%v c=%v", a, b, c)
		}
	}
}

// Property: triangle inequality for Dist.
func TestQuickTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		a := randVec(rng, 100)
		b := randVec(rng, 100)
		c := randVec(rng, 100)
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func randVec(rng *rand.Rand, scale float64) Vec {
	return V(
		(rng.Float64()*2-1)*scale,
		(rng.Float64()*2-1)*scale,
		(rng.Float64()*2-1)*scale,
	)
}
