package geom

import (
	"fmt"
	"math"
)

// AABB is an axis-aligned bounding box, the unit of spatial filtering used by
// every index and join in this repository. A box is valid when Min <= Max on
// every axis; EmptyAABB returns the canonical inverted box used as the
// identity element for Union.
type AABB struct {
	Min, Max Vec
}

// EmptyAABB returns the identity element for Union: a box inverted on every
// axis that contains nothing and unions with anything to produce the other
// operand.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec{inf, inf, inf}, Max: Vec{-inf, -inf, -inf}}
}

// Box constructs an AABB from two arbitrary corners, swapping components as
// needed so the result is valid.
func Box(a, b Vec) AABB { return AABB{Min: a.Min(b), Max: a.Max(b)} }

// BoxAround returns a cube of half-extent r centered at c. It is the shape of
// the range queries the neuroscientists issue around a point of interest.
func BoxAround(c Vec, r float64) AABB {
	e := Vec{r, r, r}
	return AABB{Min: c.Sub(e), Max: c.Add(e)}
}

// IsEmpty reports whether the box contains no points (inverted on any axis).
func (b AABB) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Center returns the geometric center of the box.
func (b AABB) Center() Vec { return b.Min.Add(b.Max).Scale(0.5) }

// Size returns the extent of the box on each axis.
func (b AABB) Size() Vec { return b.Max.Sub(b.Min) }

// Volume returns the volume of the box; empty boxes report 0.
func (b AABB) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X * s.Y * s.Z
}

// SurfaceArea returns the total surface area, the quantity R*-style heuristics
// minimize; empty boxes report 0.
func (b AABB) SurfaceArea() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return 2 * (s.X*s.Y + s.Y*s.Z + s.Z*s.X)
}

// Margin returns the sum of the three edge lengths (the R* "margin" metric).
func (b AABB) Margin() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X + s.Y + s.Z
}

// Union returns the smallest box containing both b and o.
func (b AABB) Union(o AABB) AABB {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Intersect returns the overlap of b and o; the result may be empty.
func (b AABB) Intersect(o AABB) AABB {
	return AABB{Min: b.Min.Max(o.Min), Max: b.Max.Min(o.Max)}
}

// Intersects reports whether b and o share at least one point. Boxes that
// merely touch on a face, edge or corner intersect: spatial indexes must not
// drop boundary results.
func (b AABB) Intersects(o AABB) bool {
	return b.Min.X <= o.Max.X && o.Min.X <= b.Max.X &&
		b.Min.Y <= o.Max.Y && o.Min.Y <= b.Max.Y &&
		b.Min.Z <= o.Max.Z && o.Min.Z <= b.Max.Z
}

// Contains reports whether the point p lies inside or on the boundary of b.
func (b AABB) Contains(p Vec) bool {
	return b.Min.X <= p.X && p.X <= b.Max.X &&
		b.Min.Y <= p.Y && p.Y <= b.Max.Y &&
		b.Min.Z <= p.Z && p.Z <= b.Max.Z
}

// ContainsBox reports whether o lies entirely inside b (boundaries included).
// Every box contains the empty box.
func (b AABB) ContainsBox(o AABB) bool {
	if o.IsEmpty() {
		return true
	}
	return b.Min.X <= o.Min.X && o.Max.X <= b.Max.X &&
		b.Min.Y <= o.Min.Y && o.Max.Y <= b.Max.Y &&
		b.Min.Z <= o.Min.Z && o.Max.Z <= b.Max.Z
}

// Expand grows the box by r on every side. A negative r shrinks it and may
// produce an empty box.
func (b AABB) Expand(r float64) AABB {
	e := Vec{r, r, r}
	return AABB{Min: b.Min.Sub(e), Max: b.Max.Add(e)}
}

// ExtendPoint returns the smallest box containing both b and the point p.
func (b AABB) ExtendPoint(p Vec) AABB {
	if b.IsEmpty() {
		return AABB{Min: p, Max: p}
	}
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Translate returns the box shifted by d.
func (b AABB) Translate(d Vec) AABB {
	return AABB{Min: b.Min.Add(d), Max: b.Max.Add(d)}
}

// Dist2Point returns the squared distance from p to the closest point of b
// (zero when p is inside). This is the pruning bound KNN search uses.
func (b AABB) Dist2Point(p Vec) float64 {
	var d2 float64
	for i := 0; i < 3; i++ {
		lo, hi, x := b.Min.Axis(i), b.Max.Axis(i), p.Axis(i)
		if x < lo {
			d := lo - x
			d2 += d * d
		} else if x > hi {
			d := x - hi
			d2 += d * d
		}
	}
	return d2
}

// Dist2Box returns the squared distance between the closest points of b and o
// (zero when they intersect). The distance join uses it as its filter bound.
func (b AABB) Dist2Box(o AABB) float64 {
	var d2 float64
	for i := 0; i < 3; i++ {
		lo := b.Min.Axis(i) - o.Max.Axis(i)
		hi := o.Min.Axis(i) - b.Max.Axis(i)
		if lo > 0 {
			d2 += lo * lo
		} else if hi > 0 {
			d2 += hi * hi
		}
	}
	return d2
}

// Clamp returns p moved to the closest point inside b.
func (b AABB) Clamp(p Vec) Vec {
	return p.Max(b.Min).Min(b.Max)
}

// Overlap returns the volume of the intersection of b and o.
func (b AABB) Overlap(o AABB) float64 { return b.Intersect(o).Volume() }

// Enlargement returns how much b's volume grows when extended to include o.
// R-tree insertion descends toward the child with minimal enlargement.
func (b AABB) Enlargement(o AABB) float64 { return b.Union(o).Volume() - b.Volume() }

// Octant splits b at its center and returns the i-th (0..7) child cube, with
// bit 0 selecting the upper X half, bit 1 upper Y, bit 2 upper Z.
func (b AABB) Octant(i int) AABB {
	c := b.Center()
	r := b
	if i&1 != 0 {
		r.Min.X = c.X
	} else {
		r.Max.X = c.X
	}
	if i&2 != 0 {
		r.Min.Y = c.Y
	} else {
		r.Max.Y = c.Y
	}
	if i&4 != 0 {
		r.Min.Z = c.Z
	} else {
		r.Max.Z = c.Z
	}
	return r
}

// String formats the box for diagnostics.
func (b AABB) String() string { return fmt.Sprintf("[%v .. %v]", b.Min, b.Max) }
