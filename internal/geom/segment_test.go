package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randSeg(rng *rand.Rand, scale float64) Segment {
	return Seg(randVec(rng, scale), randVec(rng, scale), rng.Float64()*scale/10)
}

// bruteAxisDist2 samples both segments densely; it upper-bounds the true
// minimum distance and converges to it as the sample count grows.
func bruteAxisDist2(s, o Segment, n int) float64 {
	best := math.Inf(1)
	for i := 0; i <= n; i++ {
		p := s.PointAt(float64(i) / float64(n))
		for j := 0; j <= n; j++ {
			q := o.PointAt(float64(j) / float64(n))
			if d := p.Dist2(q); d < best {
				best = d
			}
		}
	}
	return best
}

func TestSegmentBounds(t *testing.T) {
	s := Seg(V(0, 0, 0), V(2, 0, 0), 0.5)
	b := s.Bounds()
	if b.Min != V(-0.5, -0.5, -0.5) || b.Max != V(2.5, 0.5, 0.5) {
		t.Errorf("Bounds = %v", b)
	}
	sp := Sphere(V(1, 1, 1), 2)
	if got := sp.Bounds(); got != Box(V(-1, -1, -1), V(3, 3, 3)) {
		t.Errorf("sphere Bounds = %v", got)
	}
	if sp.Length() != 0 {
		t.Errorf("sphere Length = %v", sp.Length())
	}
}

func TestDistPoint(t *testing.T) {
	s := Seg(V(0, 0, 0), V(10, 0, 0), 1)
	if d := s.DistPoint(V(5, 3, 0)); !almostEq(d, 2, 1e-12) {
		t.Errorf("side dist = %v", d)
	}
	if d := s.DistPoint(V(-4, 0, 0)); !almostEq(d, 3, 1e-12) {
		t.Errorf("cap dist = %v", d)
	}
	if d := s.DistPoint(V(5, 0.5, 0)); !almostEq(d, -0.5, 1e-12) {
		t.Errorf("inside dist = %v", d)
	}
}

func TestAxisDist2KnownCases(t *testing.T) {
	cases := []struct {
		s, o Segment
		want float64
	}{
		// Parallel, offset by 2 in Y.
		{Seg(V(0, 0, 0), V(4, 0, 0), 0), Seg(V(0, 2, 0), V(4, 2, 0), 0), 4},
		// Crossing (skew) at distance 1 in Z.
		{Seg(V(-1, 0, 0), V(1, 0, 0), 0), Seg(V(0, -1, 1), V(0, 1, 1), 0), 1},
		// Collinear, disjoint with gap 3.
		{Seg(V(0, 0, 0), V(1, 0, 0), 0), Seg(V(4, 0, 0), V(6, 0, 0), 0), 9},
		// Identical segments.
		{Seg(V(0, 0, 0), V(1, 1, 1), 0), Seg(V(0, 0, 0), V(1, 1, 1), 0), 0},
		// Point vs point.
		{Sphere(V(0, 0, 0), 0), Sphere(V(0, 3, 4), 0), 25},
		// Point vs segment interior.
		{Sphere(V(5, 2, 0), 0), Seg(V(0, 0, 0), V(10, 0, 0), 0), 4},
	}
	for i, c := range cases {
		if got := c.s.AxisDist2(c.o); !almostEq(got, c.want, 1e-9) {
			t.Errorf("case %d: AxisDist2 = %v, want %v", i, got, c.want)
		}
		if got := c.o.AxisDist2(c.s); !almostEq(got, c.want, 1e-9) {
			t.Errorf("case %d (swapped): AxisDist2 = %v, want %v", i, got, c.want)
		}
	}
}

func TestDistAndWithinDist(t *testing.T) {
	a := Seg(V(0, 0, 0), V(10, 0, 0), 1)
	b := Seg(V(0, 4, 0), V(10, 4, 0), 1)
	if d := a.Dist(b); !almostEq(d, 2, 1e-12) {
		t.Errorf("Dist = %v", d)
	}
	if !a.WithinDist(b, 2) {
		t.Error("WithinDist(2) = false")
	}
	if !a.WithinDist(b, 2.0001) {
		t.Error("WithinDist(2.0001) = false")
	}
	if a.WithinDist(b, 1.999) {
		t.Error("WithinDist(1.999) = true")
	}
}

// Property: AxisDist2 lower-bounds dense sampling and is close to it.
func TestQuickAxisDist2VsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		s, o := randSeg(rng, 10), randSeg(rng, 10)
		exact := s.AxisDist2(o)
		approx := bruteAxisDist2(s, o, 60)
		if exact > approx+1e-9 {
			t.Fatalf("AxisDist2=%v exceeds sampled upper bound %v for %v %v", exact, approx, s, o)
		}
		// Sampling with 60 subdivisions is within (L/60)^2-ish of the truth.
		slack := math.Pow((s.Length()+o.Length())/30, 2) + 1e-9
		if approx-exact > slack {
			t.Fatalf("AxisDist2=%v too far below sampled %v (slack %v) for %v %v", exact, approx, slack, s, o)
		}
	}
}

// Property: AxisDist2 is symmetric and translation invariant.
func TestQuickAxisDist2Invariances(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		s, o := randSeg(rng, 10), randSeg(rng, 10)
		d := randVec(rng, 100)
		if !almostEq(s.AxisDist2(o), o.AxisDist2(s), 1e-9) {
			t.Fatalf("asymmetric AxisDist2: %v %v", s, o)
		}
		st := Seg(s.A.Add(d), s.B.Add(d), s.Radius)
		ot := Seg(o.A.Add(d), o.B.Add(d), o.Radius)
		if !almostEq(s.AxisDist2(o), st.AxisDist2(ot), 1e-6) {
			t.Fatalf("not translation invariant: %v %v", s, o)
		}
	}
}

func TestIntersectsBox(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	cases := []struct {
		s    Segment
		want bool
	}{
		{Seg(V(-1, 0.5, 0.5), V(2, 0.5, 0.5), 0.01), true}, // passes through
		{Seg(V(0.2, 0.2, 0.2), V(0.8, 0.8, 0.8), 0.01), true},
		{Seg(V(2, 2, 2), V(3, 3, 3), 0.1), false},
		{Seg(V(1.5, 0.5, 0.5), V(2, 0.5, 0.5), 0.6), true}, // radius reaches the face
		{Seg(V(1.5, 0.5, 0.5), V(2, 0.5, 0.5), 0.4), false},
		// Diagonal near-miss: line x+y=2.2 passes 0.2/sqrt(2)≈0.141 from the
		// corner (1,1,0.5); a 0.1 radius misses, a 0.15 radius touches.
		{Seg(V(2.2, 0, 0.5), V(0, 2.2, 0.5), 0.1), false},
		{Seg(V(2.2, 0, 0.5), V(0, 2.2, 0.5), 0.15), true},
	}
	for i, c := range cases {
		if got := c.s.IntersectsBox(b); got != c.want {
			t.Errorf("case %d: IntersectsBox(%v) = %v, want %v", i, c.s, got, c.want)
		}
	}
}

// Property: IntersectsBox agrees with dense sampling of the capsule axis.
func TestQuickIntersectsBoxVsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		b := randBox(rng, 5)
		s := randSeg(rng, 8)
		// Sampled verdict: any sampled axis point within radius of the box.
		sampled := false
		for j := 0; j <= 200; j++ {
			p := s.PointAt(float64(j) / 200)
			if b.Dist2Point(p) <= s.Radius*s.Radius {
				sampled = true
				break
			}
		}
		got := s.IntersectsBox(b)
		if sampled && !got {
			t.Fatalf("IntersectsBox=false but sampling found contact: %v %v", s, b)
		}
		// got && !sampled is possible only near tangency; verify with exact dist.
		if got && !sampled {
			d2 := s.dist2SegBox(b)
			if d2 > s.Radius*s.Radius+1e-6 {
				t.Fatalf("IntersectsBox=true but distance %v > r=%v: %v %v", math.Sqrt(d2), s.Radius, s, b)
			}
		}
	}
}

func TestClipParamRange(t *testing.T) {
	b := Box(V(0, 0, 0), V(1, 1, 1))
	s := Seg(V(-1, 0.5, 0.5), V(2, 0.5, 0.5), 0)
	t0, t1, ok := s.ClipParamRange(b)
	if !ok {
		t.Fatal("ClipParamRange missed a crossing segment")
	}
	if !almostEq(t0, 1.0/3, 1e-12) || !almostEq(t1, 2.0/3, 1e-12) {
		t.Errorf("clip = [%v,%v]", t0, t1)
	}
	if _, _, ok := Seg(V(5, 5, 5), V(6, 6, 6), 0).ClipParamRange(b); ok {
		t.Error("ClipParamRange hit a disjoint segment")
	}
	// Fully inside.
	t0, t1, ok = Seg(V(0.2, 0.2, 0.2), V(0.8, 0.8, 0.8), 0).ClipParamRange(b)
	if !ok || t0 != 0 || t1 != 1 {
		t.Errorf("inside clip = [%v,%v] ok=%v", t0, t1, ok)
	}
	// Axis-parallel segment outside one slab.
	if _, _, ok := Seg(V(2, 0.5, 0.5), V(2, 0.6, 0.5), 0).ClipParamRange(b); ok {
		t.Error("ClipParamRange hit a segment outside the X slab")
	}
}

// Property: points inside the clipped range are inside the box (with slack),
// points outside it are outside.
func TestQuickClipParamRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		b := randBox(rng, 10)
		s := Seg(randVec(rng, 20), randVec(rng, 20), 0)
		t0, t1, ok := s.ClipParamRange(b)
		for j := 0; j <= 50; j++ {
			u := float64(j) / 50
			in := b.Contains(s.PointAt(u))
			if in && !ok {
				t.Fatalf("clip says miss but point inside: %v %v", s, b)
			}
			if ok && in && (u < t0-1e-9 || u > t1+1e-9) {
				t.Fatalf("inside point %v outside clip [%v,%v]: %v %v", u, t0, t1, s, b)
			}
			if ok && !in && u > t0+1e-9 && u < t1-1e-9 {
				t.Fatalf("outside point %v inside clip [%v,%v]: %v %v", u, t0, t1, s, b)
			}
		}
	}
}
