package geom

import (
	"fmt"
	"math"
)

// Segment is a 3-D line segment from A to B with a cylinder Radius, i.e. a
// capsule. Neuron morphologies are modelled as chains of capsules: A and B are
// consecutive sample points along a branch and Radius is the branch thickness
// at that point. A capsule with A == B degenerates to a sphere, the shape used
// for somas.
type Segment struct {
	A, B   Vec
	Radius float64
}

// Seg constructs a Segment.
func Seg(a, b Vec, r float64) Segment { return Segment{A: a, B: b, Radius: r} }

// Sphere constructs the degenerate capsule used for somas.
func Sphere(c Vec, r float64) Segment { return Segment{A: c, B: c, Radius: r} }

// Bounds returns the tight axis-aligned bounding box of the capsule.
func (s Segment) Bounds() AABB {
	return Box(s.A, s.B).Expand(s.Radius)
}

// Center returns the midpoint of the capsule axis.
func (s Segment) Center() Vec { return s.A.Lerp(s.B, 0.5) }

// Length returns the length of the capsule axis (zero for spheres).
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// PointAt returns the point at parameter t in [0,1] along the axis.
func (s Segment) PointAt(t float64) Vec { return s.A.Lerp(s.B, t) }

// ClosestPointParam returns the parameter t in [0,1] of the point on the axis
// closest to p.
func (s Segment) ClosestPointParam(p Vec) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Len2()
	if l2 == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / l2
	return math.Max(0, math.Min(1, t))
}

// DistPoint returns the distance from p to the capsule surface; negative
// values mean p is inside the capsule.
func (s Segment) DistPoint(p Vec) float64 {
	t := s.ClosestPointParam(p)
	return s.PointAt(t).Dist(p) - s.Radius
}

// AxisDist2 returns the squared minimum distance between the axes (center
// lines) of s and o, the core primitive of the distance join. The
// implementation is the standard clamped closest-point computation between two
// segments (Ericson, "Real-Time Collision Detection", §5.1.9), written out so
// it allocates nothing.
func (s Segment) AxisDist2(o Segment) float64 {
	d1 := s.B.Sub(s.A) // direction of s
	d2 := o.B.Sub(o.A) // direction of o
	r := s.A.Sub(o.A)
	a := d1.Len2()
	e := d2.Len2()
	f := d2.Dot(r)

	var t1, t2 float64
	switch {
	case a == 0 && e == 0:
		// Both degenerate to points.
		return s.A.Dist2(o.A)
	case a == 0:
		// s is a point: clamp projection onto o.
		t2 = clamp01(f / e)
	case e == 0:
		// o is a point: clamp projection onto s.
		t1 = clamp01(-d1.Dot(r) / a)
	default:
		c := d1.Dot(r)
		b := d1.Dot(d2)
		den := a*e - b*b
		if den != 0 {
			t1 = clamp01((b*f - c*e) / den)
		}
		t2 = (b*t1 + f) / e
		// If t2 left [0,1], clamp it and recompute t1 for the clamped value.
		if t2 < 0 {
			t2 = 0
			t1 = clamp01(-c / a)
		} else if t2 > 1 {
			t2 = 1
			t1 = clamp01((b - c) / a)
		}
	}
	p1 := s.A.Add(d1.Scale(t1))
	p2 := o.A.Add(d2.Scale(t2))
	return p1.Dist2(p2)
}

// Dist returns the minimum distance between the capsule surfaces of s and o;
// negative values mean the capsules interpenetrate.
func (s Segment) Dist(o Segment) float64 {
	return math.Sqrt(s.AxisDist2(o)) - s.Radius - o.Radius
}

// WithinDist reports whether the capsule surfaces of s and o come within eps
// of each other. This is the join predicate used for synapse placement: two
// branches form a synapse candidate when their membranes are within the
// neurotransmitter leap distance.
func (s Segment) WithinDist(o Segment, eps float64) bool {
	sum := s.Radius + o.Radius + eps
	return s.AxisDist2(o) <= sum*sum
}

// IntersectsBox reports whether the capsule comes within its radius of the
// box, i.e. whether the capsule volume intersects the box. It is exact, not an
// MBR approximation: refinement after an index filter step uses it.
func (s Segment) IntersectsBox(b AABB) bool {
	// Quick reject on the capsule's bounding box.
	if !s.Bounds().Intersects(b) {
		return false
	}
	// Exact test: min distance from the axis segment to the box <= radius.
	return s.dist2SegBox(b) <= s.Radius*s.Radius
}

// dist2SegBox returns the squared distance between the axis segment and the
// box. It minimizes the point-to-box distance along the segment with a
// ternary search, safe because the distance-to-convex-set function is convex
// along a line.
func (s Segment) dist2SegBox(b AABB) float64 {
	if b.Contains(s.A) || b.Contains(s.B) {
		return 0
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 48; i++ {
		m1 := lo + (hi-lo)/3
		m2 := hi - (hi-lo)/3
		if b.Dist2Point(s.PointAt(m1)) < b.Dist2Point(s.PointAt(m2)) {
			hi = m2
		} else {
			lo = m1
		}
	}
	return b.Dist2Point(s.PointAt((lo + hi) / 2))
}

// ClipParamRange returns the sub-range [t0,t1] of axis parameters whose points
// lie inside the box, and ok=false when the axis misses the box entirely. It
// implements the slab method and is what SCOUT uses to find where a branch
// exits a query region.
func (s Segment) ClipParamRange(b AABB) (t0, t1 float64, ok bool) {
	d := s.B.Sub(s.A)
	t0, t1 = 0, 1
	for i := 0; i < 3; i++ {
		o, dd := s.A.Axis(i), d.Axis(i)
		lo, hi := b.Min.Axis(i), b.Max.Axis(i)
		if dd == 0 {
			if o < lo || o > hi {
				return 0, 0, false
			}
			continue
		}
		ta := (lo - o) / dd
		tb := (hi - o) / dd
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta > t0 {
			t0 = ta
		}
		if tb < t1 {
			t1 = tb
		}
		if t0 > t1 {
			return 0, 0, false
		}
	}
	return t0, t1, true
}

func clamp01(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// String formats the capsule for diagnostics.
func (s Segment) String() string {
	return fmt.Sprintf("seg{%v->%v r=%.4g}", s.A, s.B, s.Radius)
}
