package durable

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// CrashEnv is the environment variable the crash-recovery subprocess tests
// use to arm a sync-point crash in the child process: its value is a spec
// accepted by SetCrashPoint.
const CrashEnv = "NEUROSPATIAL_DURABLE_CRASH"

// Crash sync points. Each names a precise moment in the durability protocol
// where the kill-mid-commit test severs the process; the recovery invariant
// (reopen sees exactly the batches whose WAL fsync completed) must hold at
// every one of them.
const (
	// CrashWALAppend fires before the WAL record is written: the batch
	// vanishes entirely.
	CrashWALAppend = "wal-append"
	// CrashWALTorn fires after writing only a prefix of the WAL record: the
	// reopened log has a torn tail that must be truncated, not replayed.
	CrashWALTorn = "wal-torn"
	// CrashWALWritten fires after the record is fully written but before
	// fsync: the batch may or may not survive; if it does, it must replay
	// whole.
	CrashWALWritten = "wal-written"
	// CrashWALSynced fires after fsync, before the in-memory epoch
	// publishes: the batch is durable and must be recovered.
	CrashWALSynced = "wal-synced"
	// CrashCheckpointFiles fires during checkpoint, after the new snapshot,
	// page file and fresh WAL are on disk but before the manifest rename:
	// recovery must still use the old manifest and the old, untruncated WAL.
	CrashCheckpointFiles = "ckpt-files"
	// CrashCheckpointRenamed fires after the manifest rename, before the
	// stale files are deleted: recovery uses the new checkpoint and must
	// tolerate the leftovers.
	CrashCheckpointRenamed = "ckpt-renamed"
)

// CrashPoints lists every injectable sync point, in protocol order, for test
// drivers that sweep all of them.
var CrashPoints = []string{
	CrashWALAppend,
	CrashWALTorn,
	CrashWALWritten,
	CrashWALSynced,
	CrashCheckpointFiles,
	CrashCheckpointRenamed,
}

// crashPlan is the armed sync point: nil when disabled (the production
// state; a single atomic load on the WAL path).
var crashPlan atomic.Pointer[crashSpec]

type crashSpec struct {
	point string
	left  atomic.Int64 // crash on the hit that drives this to 0
}

// SetCrashPoint arms a crash at the n-th hit (1-based) of the named sync
// point, from a spec of the form "point:n". An empty spec disarms. It exists
// for the re-exec crash tests; the child process calls it with the value of
// CrashEnv before touching the dataset.
func SetCrashPoint(spec string) error {
	if spec == "" {
		crashPlan.Store(nil)
		return nil
	}
	point, nstr, ok := strings.Cut(spec, ":")
	if !ok {
		return fmt.Errorf("durable: crash spec %q is not point:n", spec)
	}
	n, err := strconv.Atoi(nstr)
	if err != nil || n < 1 {
		return fmt.Errorf("durable: crash spec %q has bad count", spec)
	}
	found := false
	for _, p := range CrashPoints {
		if p == point {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("durable: crash spec %q names unknown point", spec)
	}
	s := &crashSpec{point: point}
	s.left.Store(int64(n))
	crashPlan.Store(s)
	return nil
}

// shouldCrash reports whether the armed plan fires at this hit of point.
// The caller performs any point-specific damage (e.g. the torn partial
// write) and then calls crashNow.
func shouldCrash(point string) bool {
	s := crashPlan.Load()
	if s == nil || s.point != point {
		return false
	}
	return s.left.Add(-1) == 0
}

// MaybeCrash fires the armed crash if it targets point and this hit drives
// its countdown to zero. Protocol steps outside this package (the engine's
// checkpoint sequence) mark their sync points with it; inside the package the
// WAL calls shouldCrash/crashNow directly where point-specific damage (the
// torn partial write) happens between the two.
func MaybeCrash(point string) {
	if shouldCrash(point) {
		crashNow(point)
	}
}

// crashNow severs the process without running deferred cleanup — the closest
// portable stand-in for kill -9 at an exact instruction boundary.
func crashNow(point string) {
	fmt.Fprintf(os.Stderr, "durable: injected crash at %s\n", point)
	os.Exit(137)
}
