package durable

import (
	"fmt"
	"os"

	"neurospatial/internal/geom"
)

// Op kinds recorded in the WAL. They mirror the engine's transaction ops;
// the engine maps its internal kind onto these when logging a batch.
const (
	OpInsert uint8 = iota
	OpDelete
	OpUpdate
)

// Op is one logged mutation: kind, element ID, and (for insert/update) the
// element's bounding box.
type Op struct {
	Kind uint8
	ID   int32
	Box  geom.AABB
}

// Record is one logged commit batch: the epoch the batch published as, and
// its ops in commit order.
type Record struct {
	Epoch uint64
	Ops   []Op
}

// WAL format:
//
//	header   magic u32, version u32, baseEpoch u64
//	record*  len u32, crc u32 (CRC-32C of payload), payload
//	payload  epoch u64, nops u32, then nops × (kind u8, id i32, box 6×f64)
//
// A record that extends past end-of-file is a torn tail from a crash
// mid-append: it is truncated on open, never replayed. Any other damage — a
// checksum mismatch, a structurally invalid payload with bytes still
// following — is unrecoverable corruption and surfaces as a typed error.
const (
	walHeaderLen = 16
	walOpLen     = 1 + 4 + 6*8
	// walMaxOps bounds a record's claimed op count to keep hostile input
	// from driving huge allocations before the checksum is even verified.
	walMaxOps = 1 << 24
)

// WAL is an open write-ahead log positioned for appends.
type WAL struct {
	f         *os.File
	path      string
	baseEpoch uint64
	lastEpoch uint64 // epoch of the last record on disk (baseEpoch when none)
	buf       []byte // append scratch, reused across batches
}

// CreateWAL writes a fresh, empty log whose replay starts after baseEpoch,
// fsyncs it, and returns it open for appends.
func CreateWAL(path string, baseEpoch uint64) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: create wal: %w", err)
	}
	var e enc
	e.u32(walMagic)
	e.u32(walVersion)
	e.u64(baseEpoch)
	if _, err := f.Write(e.b); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: create wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: create wal: %w", err)
	}
	return &WAL{f: f, path: path, baseEpoch: baseEpoch, lastEpoch: baseEpoch}, nil
}

// OpenWAL reads the log at path, decodes every durable record, truncates a
// torn tail if one exists, and returns the log open for appends along with
// the records to replay (in epoch order).
func OpenWAL(path string) (*WAL, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open wal: %w", err)
	}
	baseEpoch, recs, tornOff, derr := DecodeWAL(data)
	if derr != nil {
		return nil, nil, derr
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open wal: %w", err)
	}
	if tornOff < int64(len(data)) {
		// Drop the torn tail so the next append starts on a record boundary.
		if err := f.Truncate(tornOff); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: truncate torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: truncate torn wal tail: %w", err)
		}
	}
	if _, err := f.Seek(tornOff, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("durable: open wal: %w", err)
	}
	w := &WAL{f: f, path: path, baseEpoch: baseEpoch, lastEpoch: baseEpoch}
	if n := len(recs); n > 0 {
		w.lastEpoch = recs[n-1].Epoch
	}
	return w, recs, nil
}

// DecodeWAL parses a whole WAL image: header, then records until the torn
// tail or end of input. It returns the base epoch, the decoded records, and
// the offset where valid data ends (== len(data) when the file is clean; the
// truncation point of a torn tail otherwise). It is pure — the fuzz target
// FuzzWALDecode drives it with hostile input, and it must return typed
// errors, never panic.
func DecodeWAL(data []byte) (baseEpoch uint64, recs []Record, validEnd int64, err error) {
	if len(data) < walHeaderLen {
		return 0, nil, 0, &FormatError{File: "wal", Reason: "truncated header"}
	}
	h := &dec{b: data[:walHeaderLen], file: "wal"}
	if h.u32() != walMagic {
		return 0, nil, 0, &FormatError{File: "wal", Reason: "bad magic"}
	}
	if v := h.u32(); v != walVersion {
		return 0, nil, 0, &FormatError{File: "wal", Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	baseEpoch = h.u64()
	off := int64(walHeaderLen)
	rest := data[walHeaderLen:]
	prevEpoch := baseEpoch
	for len(rest) > 0 {
		if len(rest) < 8 {
			return baseEpoch, recs, off, nil // torn frame header
		}
		plen := int64(le.Uint32(rest[0:4]))
		crc := le.Uint32(rest[4:8])
		if plen > int64(len(rest))-8 {
			return baseEpoch, recs, off, nil // torn payload
		}
		payload := rest[8 : 8+plen]
		if checksum(payload) != crc {
			return 0, nil, 0, &CorruptError{File: "wal", Offset: off, Reason: "record checksum mismatch"}
		}
		rec, perr := decodeWALPayload(payload, off)
		if perr != nil {
			return 0, nil, 0, perr
		}
		// Epochs must strictly increase but need not be consecutive: the
		// engine bumps the dataset epoch on (unlogged) compactions between
		// logged commits, so gaps are normal; regressions are corruption.
		if rec.Epoch <= prevEpoch {
			return 0, nil, 0, &CorruptError{File: "wal", Offset: off,
				Reason: fmt.Sprintf("epoch %d out of sequence after %d", rec.Epoch, prevEpoch)}
		}
		prevEpoch = rec.Epoch
		recs = append(recs, rec)
		rest = rest[8+plen:]
		off += 8 + plen
	}
	return baseEpoch, recs, off, nil
}

func decodeWALPayload(payload []byte, off int64) (Record, error) {
	d := &dec{b: payload, file: "wal"}
	epoch := d.u64()
	nops := int64(d.u32())
	if d.truncated() || nops > walMaxOps {
		return Record{}, &CorruptError{File: "wal", Offset: off, Reason: "invalid record payload"}
	}
	if int64(len(payload)) != 12+nops*walOpLen {
		return Record{}, &CorruptError{File: "wal", Offset: off, Reason: "record payload length mismatch"}
	}
	rec := Record{Epoch: epoch, Ops: make([]Op, nops)}
	for i := range rec.Ops {
		op := &rec.Ops[i]
		op.Kind = d.u8()
		op.ID = d.i32()
		op.Box.Min = geom.Vec{X: d.f64(), Y: d.f64(), Z: d.f64()}
		op.Box.Max = geom.Vec{X: d.f64(), Y: d.f64(), Z: d.f64()}
		if op.Kind > OpUpdate {
			return Record{}, &CorruptError{File: "wal", Offset: off,
				Reason: fmt.Sprintf("unknown op kind %d", op.Kind)}
		}
	}
	return rec, nil
}

// Append logs one commit batch and fsyncs it. On return the batch is
// durable; the engine publishes the in-memory epoch only after Append
// succeeds. The record's epoch must be greater than the last logged one
// (gaps are fine — compactions bump epochs without being logged).
func (w *WAL) Append(rec Record) error {
	if rec.Epoch <= w.lastEpoch {
		return fmt.Errorf("durable: wal append epoch %d out of sequence after %d", rec.Epoch, w.lastEpoch)
	}
	if shouldCrash(CrashWALAppend) {
		crashNow(CrashWALAppend)
	}
	e := enc{b: w.buf[:0]}
	e.u64(rec.Epoch)
	e.u32(uint32(len(rec.Ops)))
	for _, op := range rec.Ops {
		e.u8(op.Kind)
		e.i32(op.ID)
		e.f64(op.Box.Min.X)
		e.f64(op.Box.Min.Y)
		e.f64(op.Box.Min.Z)
		e.f64(op.Box.Max.X)
		e.f64(op.Box.Max.Y)
		e.f64(op.Box.Max.Z)
	}
	payload := e.b
	var frame enc
	frame.u32(uint32(len(payload)))
	frame.u32(checksum(payload))
	frame.b = append(frame.b, payload...)
	w.buf = payload
	if shouldCrash(CrashWALTorn) {
		// Sever mid-write: flush only a prefix of the frame, fsync so the
		// torn bytes are genuinely on disk, and die.
		w.f.Write(frame.b[:len(frame.b)/2])
		w.f.Sync()
		crashNow(CrashWALTorn)
	}
	if _, err := w.f.Write(frame.b); err != nil {
		return fmt.Errorf("durable: wal append: %w", err)
	}
	if shouldCrash(CrashWALWritten) {
		crashNow(CrashWALWritten)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: wal append: %w", err)
	}
	if shouldCrash(CrashWALSynced) {
		crashNow(CrashWALSynced)
	}
	w.lastEpoch = rec.Epoch
	return nil
}

// BaseEpoch returns the epoch the log's replay starts after.
func (w *WAL) BaseEpoch() uint64 { return w.baseEpoch }

// LastEpoch returns the epoch of the last durable record (BaseEpoch when the
// log is empty).
func (w *WAL) LastEpoch() uint64 { return w.lastEpoch }

// Path returns the file path of the log.
func (w *WAL) Path() string { return w.path }

// Close closes the underlying file.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
