// Package durable is the persistence subsystem: a file-backed page store
// behind pager.PageSource, a write-ahead log for Dataset commits, and a
// snapshot codec for the base index structures, together making a Dataset
// crash-recoverable (engine.OpenDataset recovers the last durable epoch and
// serves queries without re-indexing).
//
// On-disk layout of a dataset directory:
//
//	MANIFEST          atomic commit point (temp+rename), names the rest
//	snap-<E>.nss      snapshot of the compacted epoch E (items + index records)
//	pages-<E>.nsp     page file: checksummed fixed-size slots per segment
//	wal-<E>.nsl       write-ahead log of commits since epoch E
//
// Every file carries a magic, a version, and CRC-32C (Castagnoli) checksums:
// whole-file for MANIFEST and snapshots, per-record for the WAL, per-slot for
// pages. Parsing failures surface as typed errors (*FormatError for
// structurally invalid input, *CorruptError for checksum mismatches) — never
// panics — except on the page read path, where pager.PageSource has no error
// channel and a checksum mismatch is a storage-corruption assert.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// File format versions. A reader rejects versions it does not know.
const (
	walVersion      = 1
	manifestVersion = 1
	pageVersion     = 1
	snapVersion     = 1
)

// File magics, little-endian u32 at offset 0.
const (
	walMagic      = 0x4c57534e // "NSWL"
	manifestMagic = 0x464d534e // "NSMF"
	pageMagic     = 0x4650534e // "NSPF"
	snapMagic     = 0x5353534e // "NSSS"
)

// castagnoli is the CRC-32C table shared by every checksum in the package.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// FormatError reports structurally invalid input: wrong magic, unknown
// version, impossible lengths, trailing garbage.
type FormatError struct {
	File   string // which format ("wal", "manifest", "pages", "snapshot")
	Reason string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("durable: invalid %s: %s", e.File, e.Reason)
}

// CorruptError reports data that parsed structurally but failed a checksum,
// or a mid-file record that cannot be skipped. Offset is the byte offset of
// the failing unit when known, -1 otherwise.
type CorruptError struct {
	File   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Offset >= 0 {
		return fmt.Sprintf("durable: corrupt %s at offset %d: %s", e.File, e.Offset, e.Reason)
	}
	return fmt.Sprintf("durable: corrupt %s: %s", e.File, e.Reason)
}

// le is the byte order of every on-disk integer in this package.
var le = binary.LittleEndian

// enc is an append-only little-endian encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = le.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = le.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = le.AppendUint64(e.b, v) }
func (e *enc) i32(v int32)  { e.u32(uint32(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	if len(s) > 0xffff {
		panic("durable: string too long for format")
	}
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}

// dec is a consuming little-endian decoder. Reads past the end set err once
// and make every later read return zero, so parse code can decode a whole
// header and check err at the end.
type dec struct {
	b    []byte
	off  int64 // absolute offset of b[0] in the original input
	err  bool
	file string
}

func (d *dec) fail() {
	d.err = true
}

// truncated reports whether any read ran past the end of input.
func (d *dec) truncated() bool { return d.err }

func (d *dec) remaining() int { return len(d.b) }

func (d *dec) take(n int) []byte {
	if d.err || n < 0 || n > len(d.b) {
		d.fail()
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	d.off += int64(n)
	return out
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return le.Uint16(b)
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return le.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return le.Uint64(b)
}

func (d *dec) i32() int32   { return int32(d.u32()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *dec) str() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
