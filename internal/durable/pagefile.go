package durable

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"neurospatial/internal/pager"
)

// Page file format:
//
//	magic u32, version u32, hlen u32
//	header body (hlen bytes):
//	    maxCapacity u32, numSegments u32,
//	    then per segment: name str, firstSlot u32, numPages u32, capacity u32
//	crc u32 (CRC-32C of everything preceding)
//	slots: one fixed-size slot per page, in segment-table order
//
// Each slot is slotBytes = 8 + 4*maxCapacity bytes:
//
//	crc u32 (CRC-32C of count+ids), count u32, count × id i32, zero padding
//
// Fixed-size slots make page offsets pure arithmetic — a cold read is one
// ReadAt, no per-page index — and the per-slot checksum catches torn or
// bit-flipped pages at read time.

// Segment pairs a name with the store whose pages it persists.
type Segment struct {
	Name  string
	Store *pager.Store
}

type segMeta struct {
	firstSlot int64
	numPages  int64
	capacity  int
}

// WritePageFile persists the given stores as named segments of a single page
// file and fsyncs it. Segment order is preserved; names must be unique.
func WritePageFile(path string, segs []Segment) error {
	maxCap := 1
	for _, s := range segs {
		if c := s.Store.Capacity(); c > maxCap {
			maxCap = c
		}
	}
	var body enc
	body.u32(uint32(maxCap))
	body.u32(uint32(len(segs)))
	slot := int64(0)
	for _, s := range segs {
		body.str(s.Name)
		body.u32(uint32(slot))
		body.u32(uint32(s.Store.NumPages()))
		body.u32(uint32(s.Store.Capacity()))
		slot += int64(s.Store.NumPages())
	}
	var h enc
	h.u32(pageMagic)
	h.u32(pageVersion)
	h.u32(uint32(len(body.b)))
	h.b = append(h.b, body.b...)
	h.u32(checksum(h.b))

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: write page file: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(h.b); err != nil {
		return fmt.Errorf("durable: write page file: %w", err)
	}
	slotBytes := 8 + 4*maxCap
	buf := make([]byte, slotBytes)
	for _, s := range segs {
		for p := 0; p < s.Store.NumPages(); p++ {
			ids := s.Store.Page(pager.PageID(p))
			if len(ids) > maxCap {
				return &FormatError{File: "pages", Reason: fmt.Sprintf(
					"segment %q page %d holds %d ids, over slot capacity %d", s.Name, p, len(ids), maxCap)}
			}
			for i := range buf {
				buf[i] = 0
			}
			le.PutUint32(buf[4:8], uint32(len(ids)))
			for i, id := range ids {
				le.PutUint32(buf[8+4*i:], uint32(id))
			}
			le.PutUint32(buf[0:4], checksum(buf[4:8+4*len(ids)]))
			if _, err := f.Write(buf); err != nil {
				return fmt.Errorf("durable: write page file: %w", err)
			}
		}
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: write page file: %w", err)
	}
	return nil
}

// PageFile is an open page file serving cold reads. Opening one parses only
// the header and segment table — no page slot is touched until a segment
// source's first ReadPage, which is how OpenDataset avoids a full-store scan
// (Reads stays 0 through open).
type PageFile struct {
	f         *os.File
	path      string
	slotBase  int64
	slotBytes int64
	segs      map[string]segMeta
	order     []string
	reads     atomic.Int64
	scratch   sync.Pool
}

// OpenPageFile opens path and validates its header, table and size.
func OpenPageFile(path string) (*PageFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("durable: open page file: %w", err)
	}
	pf, err := parsePageHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return pf, nil
}

func parsePageHeader(f *os.File) (*PageFile, error) {
	pre := make([]byte, 12)
	if _, err := f.ReadAt(pre, 0); err != nil {
		return nil, &FormatError{File: "pages", Reason: "truncated header"}
	}
	d := &dec{b: pre, file: "pages"}
	if d.u32() != pageMagic {
		return nil, &FormatError{File: "pages", Reason: "bad magic"}
	}
	if v := d.u32(); v != pageVersion {
		return nil, &FormatError{File: "pages", Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	hlen := int64(d.u32())
	if hlen > 1<<24 {
		return nil, &FormatError{File: "pages", Reason: "implausible header length"}
	}
	rest := make([]byte, hlen+4)
	if _, err := f.ReadAt(rest, 12); err != nil {
		return nil, &FormatError{File: "pages", Reason: "truncated header body"}
	}
	whole := append(pre, rest[:hlen]...)
	if checksum(whole) != le.Uint32(rest[hlen:]) {
		return nil, &CorruptError{File: "pages", Offset: 0, Reason: "header checksum mismatch"}
	}
	b := &dec{b: rest[:hlen], file: "pages"}
	maxCap := int(b.u32())
	nseg := int(b.u32())
	if b.truncated() || maxCap <= 0 || maxCap > 1<<20 || nseg < 0 || nseg > 1<<16 {
		return nil, &FormatError{File: "pages", Reason: "implausible header fields"}
	}
	pf := &PageFile{
		f:         f,
		path:      f.Name(),
		slotBase:  12 + hlen + 4,
		slotBytes: int64(8 + 4*maxCap),
		segs:      make(map[string]segMeta, nseg),
	}
	pf.scratch.New = func() any {
		buf := make([]byte, pf.slotBytes)
		return &buf
	}
	nextSlot := int64(0)
	for i := 0; i < nseg; i++ {
		name := b.str()
		first := int64(b.u32())
		num := int64(b.u32())
		cap := int(b.u32())
		if b.truncated() {
			return nil, &FormatError{File: "pages", Reason: "truncated segment table"}
		}
		if name == "" || first != nextSlot || cap <= 0 || cap > maxCap {
			return nil, &FormatError{File: "pages", Reason: fmt.Sprintf("invalid segment table entry %q", name)}
		}
		if _, dup := pf.segs[name]; dup {
			return nil, &FormatError{File: "pages", Reason: fmt.Sprintf("duplicate segment %q", name)}
		}
		pf.segs[name] = segMeta{firstSlot: first, numPages: num, capacity: cap}
		pf.order = append(pf.order, name)
		nextSlot += num
	}
	if b.remaining() != 0 {
		return nil, &FormatError{File: "pages", Reason: "trailing garbage in header"}
	}
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("durable: open page file: %w", err)
	}
	if want := pf.slotBase + nextSlot*pf.slotBytes; st.Size() != want {
		return nil, &FormatError{File: "pages",
			Reason: fmt.Sprintf("size %d, want %d for %d slots", st.Size(), want, nextSlot)}
	}
	return pf, nil
}

// Segments returns the segment names in file order.
func (pf *PageFile) Segments() []string {
	out := make([]string, len(pf.order))
	copy(out, pf.order)
	return out
}

// Reads returns the number of physical slot reads issued so far — the
// independent witness that opening a dataset touched no pages.
func (pf *PageFile) Reads() int64 { return pf.reads.Load() }

// Close closes the underlying file. Segment sources keep serving already
// materialized pages but any further cold read fails.
func (pf *PageFile) Close() error {
	if pf.f == nil {
		return nil
	}
	err := pf.f.Close()
	pf.f = nil
	return err
}

// Segment returns a PageSource over the named segment. Pages materialize
// lazily on first read and are then served from memory.
func (pf *PageFile) Segment(name string) (*SegmentSource, error) {
	m, ok := pf.segs[name]
	if !ok {
		return nil, &FormatError{File: "pages", Reason: fmt.Sprintf("no segment %q", name)}
	}
	return &SegmentSource{
		pf:     pf,
		meta:   m,
		frames: make([]atomic.Pointer[pageFrame], m.numPages),
	}, nil
}

// pageFrame is one materialized page. The ids slice is immutable once the
// frame is published.
type pageFrame struct {
	ids []int32
}

// SegmentSource implements pager.PageSource over one segment of a page
// file. The steady state is allocation-free: a materialized page is one
// atomic pointer load away, and only the first (cold) read of each page
// allocates its frame. It is safe for concurrent use.
type SegmentSource struct {
	pf     *PageFile
	meta   segMeta
	frames []atomic.Pointer[pageFrame]
}

// NumPages returns the number of pages in the segment.
func (s *SegmentSource) NumPages() int { return int(s.meta.numPages) }

// ReadPage implements pager.PageSource. The returned slice is shared and
// must not be modified. A checksum mismatch on the cold read panics with a
// *CorruptError: the PageSource contract has no error channel, and a page
// that fails its CRC means the storage under a live dataset is damaged.
//
//neurospatial:hotpath
func (s *SegmentSource) ReadPage(id pager.PageID) []int32 {
	if f := s.frames[id].Load(); f != nil {
		return f.ids
	}
	return s.readMiss(id)
}

// readMiss is the cold path: one ReadAt into pooled scratch, checksum
// verification, and a compare-and-swap to publish the frame (losing the race
// just means serving the winner's identical frame).
func (s *SegmentSource) readMiss(id pager.PageID) []int32 {
	if int64(id) < 0 || int64(id) >= s.meta.numPages {
		panic(&FormatError{File: "pages", Reason: fmt.Sprintf("page %d out of range [0,%d)", id, s.meta.numPages)})
	}
	bufp := s.pf.scratch.Get().(*[]byte)
	buf := *bufp
	off := s.pf.slotBase + (s.meta.firstSlot+int64(id))*s.pf.slotBytes
	if _, err := s.pf.f.ReadAt(buf, off); err != nil {
		s.pf.scratch.Put(bufp)
		panic(&CorruptError{File: "pages", Offset: off, Reason: fmt.Sprintf("slot read failed: %v", err)})
	}
	s.pf.reads.Add(1)
	crc := le.Uint32(buf[0:4])
	count := int(le.Uint32(buf[4:8]))
	if count < 0 || count > s.meta.capacity || checksum(buf[4:8+4*count]) != crc {
		s.pf.scratch.Put(bufp)
		panic(&CorruptError{File: "pages", Offset: off, Reason: "slot checksum mismatch"})
	}
	ids := make([]int32, count)
	for i := range ids {
		ids[i] = int32(le.Uint32(buf[8+4*i:]))
	}
	s.pf.scratch.Put(bufp)
	f := &pageFrame{ids: ids}
	if !s.frames[id].CompareAndSwap(nil, f) {
		return s.frames[id].Load().ids
	}
	return ids
}
