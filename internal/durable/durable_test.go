package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

func box(x, y, z, s float64) geom.AABB {
	return geom.AABB{Min: geom.Vec{X: x, Y: y, Z: z}, Max: geom.Vec{X: x + s, Y: y + s, Z: z + s}}
}

// typedError reports whether err is one of the package's two typed parse
// errors — the only errors hostile input is allowed to produce.
func typedError(err error) bool {
	var fe *FormatError
	var ce *CorruptError
	return errors.As(err, &fe) || errors.As(err, &ce)
}

// --- WAL ---

func walRecords() []Record {
	return []Record{
		{Epoch: 1, Ops: []Op{
			{Kind: OpInsert, ID: 7, Box: box(1, 2, 3, 0.5)},
			{Kind: OpUpdate, ID: 3, Box: box(-4, 0, 9, 2)},
		}},
		{Epoch: 2, Ops: []Op{{Kind: OpDelete, ID: 7}}},
		// A gap: compactions bump epochs without being logged.
		{Epoch: 5, Ops: []Op{{Kind: OpInsert, ID: 8, Box: box(0, 0, 0, 1)}}},
		{Epoch: 6, Ops: nil}, // empty batches are legal
	}
}

func writeWAL(t *testing.T, path string, baseEpoch uint64, recs []Record) {
	t.Helper()
	w, err := CreateWAL(path, baseEpoch)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Epoch != want[i].Epoch {
			t.Fatalf("record %d epoch %d, want %d", i, got[i].Epoch, want[i].Epoch)
		}
		if len(got[i].Ops) != len(want[i].Ops) {
			t.Fatalf("record %d has %d ops, want %d", i, len(got[i].Ops), len(want[i].Ops))
		}
		for j, op := range want[i].Ops {
			if got[i].Ops[j] != op {
				t.Fatalf("record %d op %d = %+v, want %+v", i, j, got[i].Ops[j], op)
			}
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	want := walRecords()
	writeWAL(t, path, 0, want)

	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sameRecords(t, recs, want)
	if w.BaseEpoch() != 0 {
		t.Fatalf("base epoch %d, want 0", w.BaseEpoch())
	}
	if w.LastEpoch() != 6 {
		t.Fatalf("last epoch %d, want 6", w.LastEpoch())
	}
	// Appends continue past the recovered tail.
	if err := w.Append(Record{Epoch: 9}); err != nil {
		t.Fatal(err)
	}
	// Non-increasing epochs are rejected.
	if err := w.Append(Record{Epoch: 9}); err == nil {
		t.Fatal("append of repeated epoch succeeded")
	}
	if err := w.Append(Record{Epoch: 4}); err == nil {
		t.Fatal("append of regressed epoch succeeded")
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	want := walRecords()
	writeWAL(t, path, 0, want)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate every possible crash cut inside the last record: each prefix
	// that severs the final frame must recover the earlier records and
	// truncate the tail.
	lastStart := len(clean)
	{
		// Recompute the final frame's start by re-encoding all but the last.
		path2 := filepath.Join(dir, "wal2")
		writeWAL(t, path2, 0, want[:len(want)-1])
		head, err := os.ReadFile(path2)
		if err != nil {
			t.Fatal(err)
		}
		lastStart = len(head)
	}
	for cut := lastStart + 1; cut < len(clean); cut++ {
		torn := filepath.Join(dir, "torn")
		if err := os.WriteFile(torn, clean[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, recs, err := OpenWAL(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		sameRecords(t, recs, want[:len(want)-1])
		// The torn bytes are gone: a fresh append then a clean reopen sees
		// the recovered records plus the new one.
		if err := w.Append(Record{Epoch: 7, Ops: []Op{{Kind: OpInsert, ID: 1, Box: box(0, 0, 0, 1)}}}); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		w.Close()
		w2, recs2, err := OpenWAL(torn)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if len(recs2) != len(want)-1+1 || recs2[len(recs2)-1].Epoch != 7 {
			t.Fatalf("cut %d: reopen saw %d records", cut, len(recs2))
		}
		w2.Close()
	}
}

func TestWALCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	writeWAL(t, path, 0, walRecords())
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit in the first record (just after its 8-byte frame
	// header): checksum mismatch, not a torn tail.
	bad := append([]byte(nil), clean...)
	bad[walHeaderLen+8] ^= 0x40
	var ce *CorruptError
	if _, _, _, err := DecodeWAL(bad); !errors.As(err, &ce) {
		t.Fatalf("mid-file corruption: got %v, want *CorruptError", err)
	}

	// An epoch regression mid-file is corruption too: hand-craft a frame
	// whose payload checksums fine but whose epoch goes backwards.
	var payload enc
	payload.u64(1) // epoch 1 after records up to epoch 6
	payload.u32(0)
	var frame enc
	frame.u32(uint32(len(payload.b)))
	frame.u32(checksum(payload.b))
	frame.b = append(frame.b, payload.b...)
	regress := append(append([]byte(nil), clean...), frame.b...)
	if _, _, _, err := DecodeWAL(regress); !errors.As(err, &ce) {
		t.Fatalf("epoch regression: got %v, want *CorruptError", err)
	}
}

// --- Manifest ---

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := Manifest{Epoch: 42, NextID: 1000, Snapshot: "snap-42.nss", Pages: "pages-42.nsp", WAL: "wal-42.nsl"}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName+".tmp")); !os.IsNotExist(err) {
		t.Fatal("temp manifest left behind")
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

func TestManifestParseRejectsDamage(t *testing.T) {
	good := EncodeManifest(Manifest{Epoch: 1, NextID: 2, Snapshot: "s", Pages: "p", WAL: "w"})
	cases := map[string][]byte{
		"empty":        nil,
		"truncated":    good[:len(good)-5],
		"bit flip":     append(append([]byte(nil), good[:9]...), append([]byte{good[9] ^ 1}, good[10:]...)...),
		"trailing":     append(append([]byte(nil), good...), 0),
		"wrong magic":  append([]byte{0, 1, 2, 3}, good[4:]...),
		"garbage":      []byte("NSMF but not really a manifest"),
		"empty names":  EncodeManifest(Manifest{Epoch: 1, NextID: 2}),
		"only partial": EncodeManifest(Manifest{Epoch: 1, NextID: 2, Snapshot: "s", Pages: "p"}),
	}
	for name, data := range cases {
		if _, err := ParseManifest(data); err == nil || !typedError(err) {
			t.Errorf("%s: got %v, want typed error", name, err)
		}
	}
}

// --- Page file ---

func buildStore(t *testing.T, capacity int, pages [][]int32) *pager.Store {
	t.Helper()
	b, err := pager.NewBuilder(capacity)
	if err != nil {
		t.Fatal(err)
	}
	for _, ids := range pages {
		for _, id := range ids {
			b.Add(id)
		}
		b.FlushPage()
	}
	return b.Build()
}

func TestPageFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages")
	segA := buildStore(t, 4, [][]int32{{1, 2, 3, 4}, {5, 6}, {}})
	segB := buildStore(t, 2, [][]int32{{-1, 9}, {10}})
	if err := WritePageFile(path, []Segment{{Name: "a", Store: segA}, {Name: "b", Store: segB}}); err != nil {
		t.Fatal(err)
	}

	pf, err := OpenPageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	if got := pf.Segments(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("segments %v", got)
	}
	if pf.Reads() != 0 {
		t.Fatalf("open issued %d reads, want 0", pf.Reads())
	}
	for name, want := range map[string]*pager.Store{"a": segA, "b": segB} {
		src, err := pf.Segment(name)
		if err != nil {
			t.Fatal(err)
		}
		if src.NumPages() != want.NumPages() {
			t.Fatalf("segment %q has %d pages, want %d", name, src.NumPages(), want.NumPages())
		}
		for p := 0; p < want.NumPages(); p++ {
			got := src.ReadPage(pager.PageID(p))
			exp := want.Page(pager.PageID(p))
			if len(got) != len(exp) {
				t.Fatalf("segment %q page %d has %d ids, want %d", name, p, len(got), len(exp))
			}
			for i := range exp {
				if got[i] != exp[i] {
					t.Fatalf("segment %q page %d id %d = %d, want %d", name, p, i, got[i], exp[i])
				}
			}
		}
	}
	if pf.Reads() != int64(segA.NumPages()+segB.NumPages()) {
		t.Fatalf("%d physical reads for %d pages", pf.Reads(), segA.NumPages()+segB.NumPages())
	}
	// Re-reads are served from materialized frames: no further physical IO.
	src, _ := pf.Segment("a")
	warm, _ := pf.Segment("a")
	before := pf.Reads()
	src.ReadPage(0)
	src.ReadPage(0)
	if pf.Reads() != before+1 {
		t.Fatalf("re-read issued physical IO (%d -> %d)", before, pf.Reads())
	}
	_ = warm
	if _, err := pf.Segment("nope"); err == nil || !typedError(err) {
		t.Fatalf("unknown segment: %v", err)
	}
}

func TestPageFileCorruptSlotPanicsTyped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages")
	seg := buildStore(t, 4, [][]int32{{1, 2, 3, 4}})
	if err := WritePageFile(path, []Segment{{Name: "a", Store: seg}}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff // last id byte of the only slot
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	pf, err := OpenPageFile(path) // header is intact
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Close()
	src, err := pf.Segment("a")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if _, ok := r.(*CorruptError); !ok {
			t.Fatalf("recovered %v (%T), want *CorruptError", r, r)
		}
	}()
	src.ReadPage(0)
	t.Fatal("read of corrupt slot returned")
}

func TestPageFileHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages")
	seg := buildStore(t, 2, [][]int32{{1, 2}})
	if err := WritePageFile(path, []Segment{{Name: "a", Store: seg}}); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string][]byte{
		"bad magic":     append([]byte{1, 2, 3, 4}, clean[4:]...),
		"short file":    clean[:8],
		"header flip":   append(append([]byte(nil), clean[:13]...), append([]byte{clean[13] ^ 1}, clean[14:]...)...),
		"size mismatch": clean[:len(clean)-4],
	}
	for name, data := range damage {
		p := filepath.Join(dir, "bad")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenPageFile(p); err == nil || !typedError(err) {
			t.Errorf("%s: got %v, want typed error", name, err)
		}
	}
}

// --- Snapshot ---

func sampleSnapshot() *SnapshotRec {
	return &SnapshotRec{
		Epoch:   3,
		NextID:  12,
		Options: []byte(`{"Contenders":["flat"]}`),
		Items: []rtree.Item{
			{ID: 0, Box: box(0, 0, 0, 1)},
			{ID: 4, Box: box(5, 5, 5, 2)},
		},
		Indexes: []IndexRec{
			{Name: "flat", Order: []int32{0, 4}, GroupLens: []int32{2}},
			{Name: "grid", Meta: []int64{3, 4, 5}},
			{Name: "sharded",
				Order: []int32{0, 4}, GroupLens: []int32{1, 1},
				Bounds: []geom.AABB{box(0, 0, 0, 1), box(5, 5, 5, 2)},
				Subs: []IndexRec{
					{Name: "rtree", Order: []int32{0}, GroupLens: []int32{1}, Meta: []int64{16}},
					{Name: "rtree", Order: []int32{0}, GroupLens: []int32{1}, Meta: []int64{16}},
				}},
		},
	}
}

func sameIndexRec(t *testing.T, got, want *IndexRec, path string) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("%s: name %q, want %q", path, got.Name, want.Name)
	}
	if len(got.Order) != len(want.Order) || len(got.GroupLens) != len(want.GroupLens) ||
		len(got.Meta) != len(want.Meta) || len(got.Bounds) != len(want.Bounds) || len(got.Subs) != len(want.Subs) {
		t.Fatalf("%s: shape mismatch", path)
	}
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s: order[%d]", path, i)
		}
	}
	for i := range want.GroupLens {
		if got.GroupLens[i] != want.GroupLens[i] {
			t.Fatalf("%s: lens[%d]", path, i)
		}
	}
	for i := range want.Meta {
		if got.Meta[i] != want.Meta[i] {
			t.Fatalf("%s: meta[%d]", path, i)
		}
	}
	for i := range want.Bounds {
		if got.Bounds[i] != want.Bounds[i] {
			t.Fatalf("%s: bounds[%d]", path, i)
		}
	}
	for i := range want.Subs {
		sameIndexRec(t, &got.Subs[i], &want.Subs[i], path+".sub")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	want := sampleSnapshot()
	if err := WriteSnapshot(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != want.Epoch || got.NextID != want.NextID || string(got.Options) != string(want.Options) {
		t.Fatalf("header fields diverge: %+v", got)
	}
	if len(got.Items) != len(want.Items) {
		t.Fatalf("%d items, want %d", len(got.Items), len(want.Items))
	}
	for i := range want.Items {
		if got.Items[i] != want.Items[i] {
			t.Fatalf("item %d = %+v, want %+v", i, got.Items[i], want.Items[i])
		}
	}
	if len(got.Indexes) != len(want.Indexes) {
		t.Fatalf("%d indexes, want %d", len(got.Indexes), len(want.Indexes))
	}
	for i := range want.Indexes {
		sameIndexRec(t, &got.Indexes[i], &want.Indexes[i], want.Indexes[i].Name)
	}
}

func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	good := EncodeSnapshot(sampleSnapshot())
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := DecodeSnapshot(good[:cut]); err == nil || !typedError(err) {
			t.Fatalf("truncation at %d: got %v, want typed error", cut, err)
		}
	}
	for off := 0; off < len(good); off += 11 {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x10
		if _, err := DecodeSnapshot(bad); err == nil || !typedError(err) {
			t.Fatalf("bit flip at %d: got %v, want typed error", off, err)
		}
	}
}

// --- Crash plan ---

func TestSetCrashPoint(t *testing.T) {
	defer SetCrashPoint("")
	for _, bad := range []string{"wal-synced", "wal-synced:0", "wal-synced:x", "nope:1", ":1", "wal-synced:"} {
		if err := SetCrashPoint(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if err := SetCrashPoint("wal-synced:3"); err != nil {
		t.Fatal(err)
	}
	if shouldCrash(CrashWALAppend) {
		t.Fatal("wrong point fired")
	}
	if shouldCrash(CrashWALSynced) || shouldCrash(CrashWALSynced) {
		t.Fatal("fired before the armed hit count")
	}
	if !shouldCrash(CrashWALSynced) {
		t.Fatal("did not fire at the armed hit count")
	}
	if shouldCrash(CrashWALSynced) {
		t.Fatal("fired twice")
	}
	if err := SetCrashPoint(""); err != nil {
		t.Fatal(err)
	}
	if shouldCrash(CrashWALSynced) {
		t.Fatal("fired after disarm")
	}
}
