package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// ManifestName is the file the manifest lives under inside a dataset
// directory. Writing it is the atomic commit point of a checkpoint: the
// bytes land in a temp file first and reach this name via rename, so a
// reader sees either the old checkpoint or the new one, never a mix.
const ManifestName = "MANIFEST"

// Manifest names the current durable generation of a dataset.
type Manifest struct {
	// Epoch is the compacted epoch captured by Snapshot/Pages; WAL replays
	// commits after it.
	Epoch uint64
	// NextID is the dataset's ID allocator watermark at checkpoint time.
	NextID int32
	// Snapshot, Pages and WAL are file names relative to the dataset
	// directory.
	Snapshot string
	Pages    string
	WAL      string
}

// EncodeManifest renders m to its on-disk image:
//
//	magic u32, version u32, epoch u64, nextID i32,
//	snapshot str, pages str, wal str, crc u32 (CRC-32C of all preceding)
func EncodeManifest(m Manifest) []byte {
	var e enc
	e.u32(manifestMagic)
	e.u32(manifestVersion)
	e.u64(m.Epoch)
	e.i32(m.NextID)
	e.str(m.Snapshot)
	e.str(m.Pages)
	e.str(m.WAL)
	e.u32(checksum(e.b))
	return e.b
}

// ParseManifest decodes a manifest image, returning typed errors for any
// damage. It is pure — FuzzManifestParse drives it with hostile input.
func ParseManifest(data []byte) (Manifest, error) {
	if len(data) < 4+4+8+4+4 {
		return Manifest{}, &FormatError{File: "manifest", Reason: "truncated"}
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if checksum(body) != le.Uint32(tail) {
		return Manifest{}, &CorruptError{File: "manifest", Offset: -1, Reason: "checksum mismatch"}
	}
	d := &dec{b: body, file: "manifest"}
	if d.u32() != manifestMagic {
		return Manifest{}, &FormatError{File: "manifest", Reason: "bad magic"}
	}
	if v := d.u32(); v != manifestVersion {
		return Manifest{}, &FormatError{File: "manifest", Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	var m Manifest
	m.Epoch = d.u64()
	m.NextID = d.i32()
	m.Snapshot = d.str()
	m.Pages = d.str()
	m.WAL = d.str()
	if d.truncated() {
		return Manifest{}, &FormatError{File: "manifest", Reason: "truncated body"}
	}
	if d.remaining() != 0 {
		return Manifest{}, &FormatError{File: "manifest", Reason: "trailing garbage"}
	}
	if m.Snapshot == "" || m.Pages == "" || m.WAL == "" {
		return Manifest{}, &FormatError{File: "manifest", Reason: "empty file name"}
	}
	return m, nil
}

// WriteManifest atomically installs m as dir's manifest: temp file, fsync,
// rename over ManifestName, fsync of the directory. After it returns the new
// generation is the one recovery will see.
func WriteManifest(dir string, m Manifest) error {
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: write manifest: %w", err)
	}
	if _, err := f.Write(EncodeManifest(m)); err != nil {
		f.Close()
		return fmt.Errorf("durable: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: write manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("durable: write manifest: %w", err)
	}
	return syncDir(dir)
}

// ReadManifest loads and validates dir's manifest.
func ReadManifest(dir string) (Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("durable: read manifest: %w", err)
	}
	return ParseManifest(data)
}

// syncDir fsyncs a directory so a preceding rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	return nil
}
