package durable

import (
	"testing"
)

// FuzzWALDecode drives the WAL decoder with hostile input. The contract:
// never panic, never allocate proportionally to a hostile length field, and
// either succeed or fail with one of the package's typed errors. On success
// the reported valid end must lie inside the input past the header, and
// re-decoding the valid prefix must reproduce the same records (truncating at
// validEnd is exactly what OpenWAL does to a torn tail).
func FuzzWALDecode(f *testing.F) {
	// A clean two-record log with an epoch gap.
	clean := encodeWALImage(3, []Record{
		{Epoch: 4, Ops: []Op{{Kind: OpInsert, ID: 1, Box: box(0, 0, 0, 1)}, {Kind: OpDelete, ID: 0}}},
		{Epoch: 7, Ops: []Op{{Kind: OpUpdate, ID: 1, Box: box(2, 2, 2, 1)}}},
	})
	f.Add(clean)
	f.Add(clean[:len(clean)-5]) // torn tail
	f.Add(clean[:walHeaderLen]) // header only
	f.Add(clean[:3])            // truncated header
	f.Add([]byte("NSWL not really a wal"))
	flip := append([]byte(nil), clean...)
	flip[walHeaderLen+9] ^= 0x80 // bit-flipped payload
	f.Add(flip)
	hugeOps := append([]byte(nil), clean[:walHeaderLen]...)
	var e enc
	e.u32(0xffffffff) // frame claiming a 4GB payload
	e.u32(0)
	hugeOps = append(hugeOps, e.b...)
	f.Add(hugeOps)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		base, recs, end, err := DecodeWAL(data)
		if err != nil {
			if !typedError(err) {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			return
		}
		if end < walHeaderLen || end > int64(len(data)) {
			t.Fatalf("valid end %d outside (header, %d]", end, len(data))
		}
		base2, recs2, end2, err2 := DecodeWAL(data[:end])
		if err2 != nil || base2 != base || end2 != end || len(recs2) != len(recs) {
			t.Fatalf("valid prefix does not re-decode: %v", err2)
		}
		prev := base
		for i, r := range recs {
			if r.Epoch <= prev {
				t.Fatalf("record %d epoch %d not after %d", i, r.Epoch, prev)
			}
			prev = r.Epoch
			for _, op := range r.Ops {
				if op.Kind > OpUpdate {
					t.Fatalf("record %d has invalid op kind %d", i, op.Kind)
				}
			}
		}
	})
}

// encodeWALImage renders a header plus records the way CreateWAL+Append
// would, without touching the filesystem — the fuzz seeds want clean images.
func encodeWALImage(baseEpoch uint64, recs []Record) []byte {
	var e enc
	e.u32(walMagic)
	e.u32(walVersion)
	e.u64(baseEpoch)
	for _, rec := range recs {
		var p enc
		p.u64(rec.Epoch)
		p.u32(uint32(len(rec.Ops)))
		for _, op := range rec.Ops {
			p.u8(op.Kind)
			p.i32(op.ID)
			p.f64(op.Box.Min.X)
			p.f64(op.Box.Min.Y)
			p.f64(op.Box.Min.Z)
			p.f64(op.Box.Max.X)
			p.f64(op.Box.Max.Y)
			p.f64(op.Box.Max.Z)
		}
		e.u32(uint32(len(p.b)))
		e.u32(checksum(p.b))
		e.b = append(e.b, p.b...)
	}
	return e.b
}

// FuzzManifestParse drives the manifest parser with hostile input: typed
// errors or a manifest whose invariants (non-empty file names) hold, never a
// panic.
func FuzzManifestParse(f *testing.F) {
	clean := EncodeManifest(Manifest{Epoch: 9, NextID: 77, Snapshot: "snap-9.nss", Pages: "pages-9.nsp", WAL: "wal-9.nsl"})
	f.Add(clean)
	f.Add(clean[:len(clean)-3]) // truncated tail
	f.Add(clean[:5])            // truncated header
	flip := append([]byte(nil), clean...)
	flip[10] ^= 0x04 // bit-flipped epoch
	f.Add(flip)
	f.Add(append(append([]byte(nil), clean...), 0xaa)) // trailing garbage
	f.Add([]byte("NSMF"))
	f.Add([]byte{})
	huge := append([]byte(nil), clean[:16]...)
	huge = append(huge, 0xff, 0xff) // string claiming 64KB
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			if !typedError(err) {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			return
		}
		if m.Snapshot == "" || m.Pages == "" || m.WAL == "" {
			t.Fatalf("parsed manifest with empty file name: %+v", m)
		}
		// A successful parse must re-encode to the same bytes (the format has
		// exactly one encoding per manifest), so silent misparses cannot hide.
		re := EncodeManifest(m)
		if len(re) != len(data) {
			t.Fatalf("re-encode is %d bytes, input %d", len(re), len(data))
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("re-encode diverges at byte %d", i)
			}
		}
	})
}
