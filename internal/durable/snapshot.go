package durable

import (
	"fmt"
	"os"

	"neurospatial/internal/geom"
	"neurospatial/internal/rtree"
)

// SnapshotRec is the durable image of one compacted dataset epoch: the live
// items plus, per contender, the sort outputs its build phase computed (page
// layouts, leaf runs, grid dims, shard partitions). Recovery re-derives
// everything else from these records with linear work — no re-sorting, no
// re-indexing.
type SnapshotRec struct {
	// Epoch is the compacted epoch this snapshot captures.
	Epoch uint64
	// NextID is the dataset's ID allocator watermark.
	NextID int32
	// Options is the engine's own opaque encoding of the dataset options;
	// durable stores it verbatim.
	Options []byte
	// Items are the live items in ascending ID order.
	Items []rtree.Item
	// Indexes holds one record per contender, in dataset contender order.
	Indexes []IndexRec
}

// IndexRec is the recorded build output of one index. The engine gives each
// field contender-specific meaning:
//
//	flat     Order = page contents concatenated, GroupLens = page lengths
//	rtree    Order = leaf items in pre-order, GroupLens = leaf run lengths,
//	         Meta = [fanout]
//	grid     Meta = [nx, ny, nz]
//	sharded  GroupLens = shard sizes, Order = concatenated shard-local
//	         parent IDs, Bounds = shard bounds, Subs = per-shard sub-records
type IndexRec struct {
	Name      string
	Order     []int32
	GroupLens []int32
	Meta      []int64
	Bounds    []geom.AABB
	Subs      []IndexRec
}

// snapMaxDepth bounds IndexRec nesting (sharded nests one level; hostile
// input must not recurse unboundedly).
const snapMaxDepth = 4

// EncodeSnapshot renders rec to its on-disk image: magic, version, body,
// trailing whole-file CRC-32C.
func EncodeSnapshot(rec *SnapshotRec) []byte {
	var e enc
	e.u32(snapMagic)
	e.u32(snapVersion)
	e.u64(rec.Epoch)
	e.i32(rec.NextID)
	e.u32(uint32(len(rec.Options)))
	e.b = append(e.b, rec.Options...)
	e.u32(uint32(len(rec.Items)))
	for _, it := range rec.Items {
		e.i32(it.ID)
		encodeBox(&e, it.Box)
	}
	e.u32(uint32(len(rec.Indexes)))
	for i := range rec.Indexes {
		encodeIndexRec(&e, &rec.Indexes[i])
	}
	e.u32(checksum(e.b))
	return e.b
}

func encodeBox(e *enc, b geom.AABB) {
	e.f64(b.Min.X)
	e.f64(b.Min.Y)
	e.f64(b.Min.Z)
	e.f64(b.Max.X)
	e.f64(b.Max.Y)
	e.f64(b.Max.Z)
}

func encodeIndexRec(e *enc, r *IndexRec) {
	e.str(r.Name)
	e.u32(uint32(len(r.Order)))
	for _, v := range r.Order {
		e.i32(v)
	}
	e.u32(uint32(len(r.GroupLens)))
	for _, v := range r.GroupLens {
		e.i32(v)
	}
	e.u32(uint32(len(r.Meta)))
	for _, v := range r.Meta {
		e.u64(uint64(v))
	}
	e.u32(uint32(len(r.Bounds)))
	for _, b := range r.Bounds {
		encodeBox(e, b)
	}
	e.u32(uint32(len(r.Subs)))
	for i := range r.Subs {
		encodeIndexRec(e, &r.Subs[i])
	}
}

// DecodeSnapshot parses a snapshot image, returning typed errors for any
// damage.
func DecodeSnapshot(data []byte) (*SnapshotRec, error) {
	if len(data) < 4+4+8+4+4+4+4+4 {
		return nil, &FormatError{File: "snapshot", Reason: "truncated"}
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if checksum(body) != le.Uint32(tail) {
		return nil, &CorruptError{File: "snapshot", Offset: -1, Reason: "checksum mismatch"}
	}
	d := &dec{b: body, file: "snapshot"}
	if d.u32() != snapMagic {
		return nil, &FormatError{File: "snapshot", Reason: "bad magic"}
	}
	if v := d.u32(); v != snapVersion {
		return nil, &FormatError{File: "snapshot", Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	rec := &SnapshotRec{}
	rec.Epoch = d.u64()
	rec.NextID = d.i32()
	optLen := int(d.u32())
	rec.Options = append([]byte(nil), d.take(optLen)...)
	nitems, ok := countField(d, 4+48)
	if !ok {
		return nil, &FormatError{File: "snapshot", Reason: "implausible item count"}
	}
	rec.Items = make([]rtree.Item, nitems)
	for i := range rec.Items {
		rec.Items[i].ID = d.i32()
		rec.Items[i].Box = decodeBox(d)
	}
	nidx, ok := countField(d, 2)
	if !ok {
		return nil, &FormatError{File: "snapshot", Reason: "implausible index count"}
	}
	rec.Indexes = make([]IndexRec, nidx)
	for i := range rec.Indexes {
		if err := decodeIndexRec(d, &rec.Indexes[i], 0); err != nil {
			return nil, err
		}
	}
	if d.truncated() {
		return nil, &FormatError{File: "snapshot", Reason: "truncated body"}
	}
	if d.remaining() != 0 {
		return nil, &FormatError{File: "snapshot", Reason: "trailing garbage"}
	}
	return rec, nil
}

func decodeBox(d *dec) geom.AABB {
	return geom.AABB{
		Min: geom.Vec{X: d.f64(), Y: d.f64(), Z: d.f64()},
		Max: geom.Vec{X: d.f64(), Y: d.f64(), Z: d.f64()},
	}
}

// countField reads a u32 count and rejects values whose minimal encoding
// (elemLen bytes each) could not fit in the remaining input, so a flipped
// length field cannot drive a huge allocation.
func countField(d *dec, elemLen int) (int, bool) {
	n := int64(d.u32())
	if d.truncated() || n*int64(elemLen) > int64(d.remaining()) {
		return 0, false
	}
	return int(n), true
}

func decodeIndexRec(d *dec, r *IndexRec, depth int) error {
	if depth > snapMaxDepth {
		return &FormatError{File: "snapshot", Reason: "index record nesting too deep"}
	}
	r.Name = d.str()
	n, ok := countField(d, 4)
	if !ok {
		return &FormatError{File: "snapshot", Reason: "implausible order length"}
	}
	r.Order = make([]int32, n)
	for i := range r.Order {
		r.Order[i] = d.i32()
	}
	if n, ok = countField(d, 4); !ok {
		return &FormatError{File: "snapshot", Reason: "implausible group count"}
	}
	r.GroupLens = make([]int32, n)
	for i := range r.GroupLens {
		r.GroupLens[i] = d.i32()
	}
	if n, ok = countField(d, 8); !ok {
		return &FormatError{File: "snapshot", Reason: "implausible meta length"}
	}
	r.Meta = make([]int64, n)
	for i := range r.Meta {
		r.Meta[i] = int64(d.u64())
	}
	if n, ok = countField(d, 48); !ok {
		return &FormatError{File: "snapshot", Reason: "implausible bounds count"}
	}
	r.Bounds = make([]geom.AABB, n)
	for i := range r.Bounds {
		r.Bounds[i] = decodeBox(d)
	}
	if n, ok = countField(d, 2); !ok {
		return &FormatError{File: "snapshot", Reason: "implausible sub count"}
	}
	r.Subs = make([]IndexRec, n)
	for i := range r.Subs {
		if err := decodeIndexRec(d, &r.Subs[i], depth+1); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshot writes rec to path and fsyncs it.
func WriteSnapshot(path string, rec *SnapshotRec) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: write snapshot: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(EncodeSnapshot(rec)); err != nil {
		return fmt.Errorf("durable: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: write snapshot: %w", err)
	}
	return nil
}

// ReadSnapshot loads and validates the snapshot at path.
func ReadSnapshot(path string) (*SnapshotRec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("durable: read snapshot: %w", err)
	}
	return DecodeSnapshot(data)
}
