package hilbert

import "testing"

// FuzzEncodeDecodeRoundTrip drives Encode with arbitrary coordinates at
// arbitrary orders and asserts Decode inverts it exactly, and that the index
// stays inside the curve's range. Seed corpus: testdata/fuzz.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint32(0), uint32(0), uint32(0))
	f.Add(uint8(1), uint32(1), uint32(0), uint32(1))
	f.Add(uint8(5), uint32(17), uint32(31), uint32(4))
	f.Add(uint8(20), uint32(1)<<20, uint32(0xfffff), uint32(12345))
	f.Add(uint8(255), ^uint32(0), ^uint32(0), ^uint32(0))
	f.Fuzz(func(t *testing.T, orderRaw uint8, x, y, z uint32) {
		order := int(orderRaw)%MaxOrder + 1
		mask := uint32(1)<<order - 1
		x, y, z = x&mask, y&mask, z&mask
		h := Encode(order, x, y, z)
		if maxIdx := (uint64(1) << (3 * order)) - 1; h > maxIdx {
			t.Fatalf("order %d: Encode(%d,%d,%d) = %d exceeds max index %d",
				order, x, y, z, h, maxIdx)
		}
		gx, gy, gz := Decode(order, h)
		if gx != x || gy != y || gz != z {
			t.Fatalf("order %d: Decode(Encode(%d,%d,%d)) = (%d,%d,%d)",
				order, x, y, z, gx, gy, gz)
		}
	})
}

// FuzzDecodeEncodeRoundTrip drives Decode with arbitrary indexes and asserts
// Encode inverts it — together with the forward fuzz this proves the mapping
// is a bijection on every order's full domain.
func FuzzDecodeEncodeRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(0))
	f.Add(uint8(2), uint64(63))
	f.Add(uint8(9), uint64(123456789))
	f.Add(uint8(20), ^uint64(0)>>1)
	f.Fuzz(func(t *testing.T, orderRaw uint8, h uint64) {
		order := int(orderRaw)%MaxOrder + 1
		h &= (uint64(1) << (3 * order)) - 1
		x, y, z := Decode(order, h)
		mask := uint32(1)<<order - 1
		if x > mask || y > mask || z > mask {
			t.Fatalf("order %d: Decode(%d) = (%d,%d,%d) escapes the grid", order, h, x, y, z)
		}
		if got := Encode(order, x, y, z); got != h {
			t.Fatalf("order %d: Encode(Decode(%d)) = %d", order, h, got)
		}
	})
}
