// Package hilbert implements a three-dimensional Hilbert space-filling curve.
//
// The curve maps points of a 2^order × 2^order × 2^order integer grid to a
// one-dimensional index such that points close on the curve are close in
// space. Two consumers rely on it:
//
//   - the storage layout: FLAT and the paged R-tree place spatially close
//     elements on the same disk page by sorting elements in Hilbert order, the
//     layout the FLAT paper uses for its sequential page numbering; and
//   - the Hilbert prefetching baseline from Park & Kim (TKDE 2001), which
//     prefetches the pages that follow the current page in curve order.
//
// The transpose-based algorithm is Skilling's ("Programming the Hilbert
// curve", AIP 2004): coordinates are interleaved into a Hilbert "transpose"
// form and converted with O(order) bit manipulation, with no lookup tables,
// which keeps the package dependency-free and the encoding bijective for any
// order up to 21 (63-bit indexes).
package hilbert

import (
	"fmt"

	"neurospatial/internal/geom"
)

// MaxOrder is the largest supported curve order; 21 bits per axis fills the
// 63 usable bits of the uint64 index.
const MaxOrder = 21

// Curve is a 3-D Hilbert curve of a fixed order covering a fixed spatial
// region. The zero value is not usable; construct curves with New.
type Curve struct {
	order int
	box   geom.AABB
	scale geom.Vec // grid cells per spatial unit on each axis
}

// New returns a curve of the given order (1..MaxOrder) covering box. Spatial
// points are quantized onto the curve grid before encoding; degenerate boxes
// (zero extent on an axis) quantize that axis to cell 0.
func New(order int, box geom.AABB) (*Curve, error) {
	if order < 1 || order > MaxOrder {
		return nil, fmt.Errorf("hilbert: order %d out of range [1,%d]", order, MaxOrder)
	}
	if box.IsEmpty() {
		return nil, fmt.Errorf("hilbert: empty box %v", box)
	}
	n := float64(uint64(1) << order)
	size := box.Size()
	scale := geom.Vec{}
	if size.X > 0 {
		scale.X = n / size.X
	}
	if size.Y > 0 {
		scale.Y = n / size.Y
	}
	if size.Z > 0 {
		scale.Z = n / size.Z
	}
	return &Curve{order: order, box: box, scale: scale}, nil
}

// MustNew is New for static configurations that cannot fail.
func MustNew(order int, box geom.AABB) *Curve {
	c, err := New(order, box)
	if err != nil {
		panic(err)
	}
	return c
}

// Order returns the curve order.
func (c *Curve) Order() int { return c.order }

// Bits returns the total number of index bits (3 × order).
func (c *Curve) Bits() int { return 3 * c.order }

// MaxIndex returns the largest index on the curve (2^(3·order) − 1).
func (c *Curve) MaxIndex() uint64 { return (uint64(1) << (3 * c.order)) - 1 }

// Cell quantizes a spatial point to integer grid coordinates, clamping points
// outside the curve's box onto its boundary cells.
func (c *Curve) Cell(p geom.Vec) (x, y, z uint32) {
	max := (uint64(1) << c.order) - 1
	q := p.Sub(c.box.Min)
	x = clampCell(q.X*c.scale.X, max)
	y = clampCell(q.Y*c.scale.Y, max)
	z = clampCell(q.Z*c.scale.Z, max)
	return
}

// Index returns the Hilbert index of the spatial point p.
func (c *Curve) Index(p geom.Vec) uint64 {
	x, y, z := c.Cell(p)
	return Encode(c.order, x, y, z)
}

// CellCenter returns the spatial center of the grid cell (x, y, z).
func (c *Curve) CellCenter(x, y, z uint32) geom.Vec {
	n := float64(uint64(1) << c.order)
	size := c.box.Size()
	return geom.Vec{
		X: c.box.Min.X + (float64(x)+0.5)/n*size.X,
		Y: c.box.Min.Y + (float64(y)+0.5)/n*size.Y,
		Z: c.box.Min.Z + (float64(z)+0.5)/n*size.Z,
	}
}

// Point returns the spatial center of the cell at Hilbert index i.
func (c *Curve) Point(i uint64) geom.Vec {
	x, y, z := Decode(c.order, i)
	return c.CellCenter(x, y, z)
}

func clampCell(v float64, max uint64) uint32 {
	if v < 0 {
		return 0
	}
	u := uint64(v)
	if u > max {
		u = max
	}
	return uint32(u)
}

// Encode maps grid coordinates to a Hilbert index for a curve of the given
// order. Coordinates must fit in order bits; higher bits are ignored.
func Encode(order int, x, y, z uint32) uint64 {
	mask := uint32(1)<<order - 1
	X := [3]uint32{x & mask, y & mask, z & mask}

	// Inverse undo excess work (Skilling's transpose-to-axes inverse).
	m := uint32(1) << (order - 1)
	// Gray decode the axes into transpose form.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < 3; i++ {
			if X[i]&q != 0 {
				X[0] ^= p // invert
			} else {
				t := (X[0] ^ X[i]) & p
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < 3; i++ {
		X[i] ^= X[i-1]
	}
	t := uint32(0)
	for q := m; q > 1; q >>= 1 {
		if X[2]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < 3; i++ {
		X[i] ^= t
	}

	return interleave(order, X)
}

// Decode maps a Hilbert index back to grid coordinates.
func Decode(order int, h uint64) (x, y, z uint32) {
	X := deinterleave(order, h)

	// Gray decode by H ^ (H/2).
	n := uint32(2) << (order - 1)
	t := X[2] >> 1
	for i := 2; i > 0; i-- {
		X[i] ^= X[i-1]
	}
	X[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != n; q <<= 1 {
		p := q - 1
		for i := 2; i >= 0; i-- {
			if X[i]&q != 0 {
				X[0] ^= p
			} else {
				t := (X[0] ^ X[i]) & p
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	return X[0], X[1], X[2]
}

// interleave packs the transpose form into a single index: bit b of axis i
// becomes bit 3*b + (2-i) of the result, most significant bits first.
func interleave(order int, X [3]uint32) uint64 {
	var h uint64
	for b := order - 1; b >= 0; b-- {
		for i := 0; i < 3; i++ {
			h = h<<1 | uint64((X[i]>>b)&1)
		}
	}
	return h
}

func deinterleave(order int, h uint64) [3]uint32 {
	var X [3]uint32
	for b := 0; b < order; b++ {
		for i := 2; i >= 0; i-- {
			X[i] |= uint32(h&1) << b
			h >>= 1
		}
	}
	return X
}
