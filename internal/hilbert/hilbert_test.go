package hilbert

import (
	"math/rand"
	"testing"
	"testing/quick"

	"neurospatial/internal/geom"
)

func TestEncodeDecodeRoundTripSmall(t *testing.T) {
	for order := 1; order <= 4; order++ {
		n := uint32(1) << order
		seen := make(map[uint64]bool, int(n)*int(n)*int(n))
		for x := uint32(0); x < n; x++ {
			for y := uint32(0); y < n; y++ {
				for z := uint32(0); z < n; z++ {
					h := Encode(order, x, y, z)
					if h > (uint64(1)<<(3*order))-1 {
						t.Fatalf("order %d: index %d out of range", order, h)
					}
					if seen[h] {
						t.Fatalf("order %d: duplicate index %d", order, h)
					}
					seen[h] = true
					gx, gy, gz := Decode(order, h)
					if gx != x || gy != y || gz != z {
						t.Fatalf("order %d: roundtrip (%d,%d,%d) -> %d -> (%d,%d,%d)",
							order, x, y, z, h, gx, gy, gz)
					}
				}
			}
		}
		if len(seen) != int(n)*int(n)*int(n) {
			t.Fatalf("order %d: not a bijection, %d cells", order, len(seen))
		}
	}
}

// Property: consecutive indexes map to grid-adjacent cells (the defining
// continuity property of the Hilbert curve).
func TestCurveContinuity(t *testing.T) {
	for order := 1; order <= 3; order++ {
		total := uint64(1) << (3 * order)
		px, py, pz := Decode(order, 0)
		for h := uint64(1); h < total; h++ {
			x, y, z := Decode(order, h)
			d := absDiff(x, px) + absDiff(y, py) + absDiff(z, pz)
			if d != 1 {
				t.Fatalf("order %d: step %d jumps %d cells: (%d,%d,%d)->(%d,%d,%d)",
					order, h, d, px, py, pz, x, y, z)
			}
			px, py, pz = x, y, z
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

// Property: roundtrip holds for random coordinates at high order.
func TestQuickRoundTripOrder21(t *testing.T) {
	f := func(x, y, z uint32) bool {
		mask := uint32(1)<<MaxOrder - 1
		x, y, z = x&mask, y&mask, z&mask
		gx, gy, gz := Decode(MaxOrder, Encode(MaxOrder, x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	box := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	if _, err := New(0, box); err == nil {
		t.Error("order 0 accepted")
	}
	if _, err := New(MaxOrder+1, box); err == nil {
		t.Error("order 22 accepted")
	}
	if _, err := New(4, geom.EmptyAABB()); err == nil {
		t.Error("empty box accepted")
	}
	c, err := New(4, box)
	if err != nil {
		t.Fatal(err)
	}
	if c.Order() != 4 || c.Bits() != 12 || c.MaxIndex() != 4095 {
		t.Errorf("curve metadata wrong: order=%d bits=%d max=%d", c.Order(), c.Bits(), c.MaxIndex())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0) did not panic")
		}
	}()
	MustNew(0, geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)))
}

func TestCurveIndexClampsOutside(t *testing.T) {
	c := MustNew(5, geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)))
	inside := c.Index(geom.V(5, 5, 5))
	_ = inside
	lo := c.Index(geom.V(-100, -100, -100))
	hi := c.Index(geom.V(100, 100, 100))
	if x, y, z := c.Cell(geom.V(-100, 0, 0)); x != 0 {
		t.Errorf("below-range cell = (%d,%d,%d)", x, y, z)
	}
	if x, _, _ := c.Cell(geom.V(100, 0, 0)); x != 31 {
		t.Errorf("above-range x cell = %d", x)
	}
	if lo > c.MaxIndex() || hi > c.MaxIndex() {
		t.Error("clamped index out of range")
	}
}

func TestCurvePointInverse(t *testing.T) {
	c := MustNew(6, geom.Box(geom.V(-5, -5, -5), geom.V(5, 5, 5)))
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		p := geom.V(rng.Float64()*10-5, rng.Float64()*10-5, rng.Float64()*10-5)
		h := c.Index(p)
		q := c.Point(h)
		// q is the center of p's cell: same cell, so same index.
		if c.Index(q) != h {
			t.Fatalf("Point/Index not inverse at %v: %d vs %d", p, h, c.Index(q))
		}
		// Cell size is 10/64; center is within half a cell diagonal.
		if p.Dist(q) > 10.0/64*0.87+1e-9 {
			t.Fatalf("cell center too far: %v vs %v", p, q)
		}
	}
}

// Locality: points that are close in space should on average be close on the
// curve compared to random pairs. This is a statistical property, checked
// with a generous margin so it never flakes.
func TestCurveLocality(t *testing.T) {
	c := MustNew(8, geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)))
	rng := rand.New(rand.NewSource(12))
	var nearSum, farSum float64
	n := 2000
	for i := 0; i < n; i++ {
		p := geom.V(rng.Float64(), rng.Float64(), rng.Float64())
		q := p.Add(geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).Normalize().Scale(0.01))
		r := geom.V(rng.Float64(), rng.Float64(), rng.Float64())
		nearSum += absU64(c.Index(p), c.Index(q))
		farSum += absU64(c.Index(p), c.Index(r))
	}
	if nearSum*10 > farSum {
		t.Errorf("curve locality weak: near avg %.3g vs far avg %.3g", nearSum/float64(n), farSum/float64(n))
	}
}

func absU64(a, b uint64) float64 {
	if a > b {
		return float64(a - b)
	}
	return float64(b - a)
}

func BenchmarkEncodeOrder21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(21, uint32(i)*2654435761, uint32(i)*40503, uint32(i)*9973)
	}
}

func BenchmarkDecodeOrder21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Decode(21, uint64(i)*0x9E3779B97F4A7C15>>1)
	}
}
