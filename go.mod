module neurospatial

go 1.21
