// Package bench is the repository-level benchmark harness: one testing.B
// benchmark per experiment of DESIGN.md's index (E1-E6, each reproducing a
// figure or claim of the paper) plus the ablation benches for the design
// choices DESIGN.md calls out. Custom metrics expose the *shape* quantities
// (page reads, speedups, comparisons) next to Go's ns/op, so
// `go test -bench=. -benchmem` regenerates every series of EXPERIMENTS.md.
package bench

import (
	"math"
	"strconv"
	"sync"
	"testing"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/experiments"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/join"
	"neurospatial/internal/pager"
	"neurospatial/internal/prefetch"
	"neurospatial/internal/rtree"
	"neurospatial/internal/scout"
	"neurospatial/internal/touch"
)

// modelCache builds each benchmark model once; repeated bench invocations
// reuse it.
var modelCache sync.Map // params key -> *core.Model

type modelKey struct {
	neurons int
	edge    float64
	layered bool
	seed    int64
}

func benchModel(b *testing.B, k modelKey) *core.Model {
	b.Helper()
	if m, ok := modelCache.Load(k); ok {
		return m.(*core.Model)
	}
	p := circuit.DefaultParams()
	p.Neurons = k.neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(k.edge, k.edge, k.edge))
	p.Seed = k.seed
	if k.layered {
		p.Layers = circuit.CorticalLayers()
	}
	m, err := core.BuildModel(p, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	modelCache.Store(k, m)
	return m
}

// BenchmarkE1FLATvsRTreeDensity reproduces Figures 2+3: the same fixed-size
// range query against FLAT and the element R-tree across data densities.
// Metrics: pages/op (FLAT data pages or R-tree node reads) and results/op.
func BenchmarkE1FLATvsRTreeDensity(b *testing.B) {
	for _, neurons := range []int{32, 128, 256} {
		m := benchModel(b, modelKey{neurons: neurons, edge: 300, seed: 1})
		queries := e1Queries(m)
		b.Run(sub("FLAT/neurons", neurons), func(b *testing.B) {
			var pages, results int64
			for i := 0; i < b.N; i++ {
				st := m.Flat.Query(queries[i%len(queries)], nil, func(int32) {})
				pages += st.PagesRead
				results += st.Results
			}
			b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
			b.ReportMetric(float64(results)/float64(b.N), "results/op")
		})
		b.Run(sub("RTree/neurons", neurons), func(b *testing.B) {
			var pages, results int64
			for i := 0; i < b.N; i++ {
				st := m.RTree.Query(queries[i%len(queries)], func(rtree.Item) {})
				pages += st.NodeAccesses()
				results += st.Results
			}
			b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
			b.ReportMetric(float64(results)/float64(b.N), "results/op")
		})
	}
}

func e1Queries(m *core.Model) []geom.AABB {
	c := m.Circuit.Params.Volume.Center()
	span := m.Circuit.Params.Volume.Size().Scale(0.2)
	out := make([]geom.AABB, 8)
	for i := range out {
		off := geom.V(
			span.X*float64(i%2*2-1)*0.5,
			span.Y*float64((i/2)%2*2-1)*0.5,
			span.Z*float64((i/4)%2*2-1)*0.5,
		)
		out[i] = geom.BoxAround(c.Add(off), 25)
	}
	return out
}

// BenchmarkE2FLATCrawl reproduces Figure 4: crawl cost across query sizes on
// one dense model. Metrics: crawl pages, seed accesses, results.
func BenchmarkE2FLATCrawl(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 128, edge: 300, seed: 2})
	center := m.Circuit.Params.Volume.Center()
	for _, radius := range []float64{10, 40, 80} {
		q := geom.BoxAround(center, radius)
		b.Run(sub("radius", int(radius)), func(b *testing.B) {
			var pages, seed, results int64
			for i := 0; i < b.N; i++ {
				st := m.Flat.Query(q, nil, func(int32) {})
				pages += st.PagesRead
				seed += st.SeedNodeAccesses
				results += st.Results
			}
			b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
			b.ReportMetric(float64(seed)/float64(b.N), "seed/op")
			b.ReportMetric(float64(results)/float64(b.N), "results/op")
		})
	}
}

// BenchmarkE3ScoutPruning reproduces Figure 5: the per-step cost of SCOUT's
// skeleton reconstruction and candidate pruning along a walkthrough.
// Metric: candidates left at the walkthrough's end.
func BenchmarkE3ScoutPruning(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 64, edge: 300, seed: 3})
	neuron, branch, _ := m.Circuit.LongestPath()
	boxes := walkBoxes(b, m, neuron, branch)
	// Precompute query results so only SCOUT's own work is measured.
	results := make([][]int32, len(boxes))
	for i, q := range boxes {
		m.Flat.Query(q, nil, func(id int32) { results[i] = append(results[i], id) })
	}
	b.ResetTimer()
	var finalCandidates int
	for i := 0; i < b.N; i++ {
		s := scout.New(scout.Options{})
		ctx := &prefetch.Context{Index: m.Flat, Segment: m.Segment}
		for j, q := range boxes {
			ctx.History = append(ctx.History, q)
			s.Predict(ctx, q, results[j], 64)
		}
		finalCandidates = s.LastCandidateCount()
	}
	b.ReportMetric(float64(finalCandidates), "candidates")
	b.ReportMetric(float64(len(boxes)), "steps")
}

func walkBoxes(b *testing.B, m *core.Model, neuron int32, branch int) []geom.AABB {
	b.Helper()
	path, err := m.Circuit.BranchPath(neuron, branch)
	if err != nil {
		b.Fatal(err)
	}
	var boxes []geom.AABB
	carried := 0.0
	boxes = append(boxes, geom.BoxAround(path[0], 15))
	for i := 0; i+1 < len(path); i++ {
		a, bb := path[i], path[i+1]
		l := a.Dist(bb)
		for carried+l >= 8 {
			t := (8 - carried) / l
			a = a.Lerp(bb, t)
			l = a.Dist(bb)
			carried = 0
			boxes = append(boxes, geom.BoxAround(a, 15))
		}
		carried += l
	}
	return boxes
}

// BenchmarkE4ScoutSpeedup reproduces Figure 6: the full walkthrough
// simulation per prefetching method. Metrics: simulated stall milliseconds
// and prefetch accuracy; the paper's speedup is stall(none)/stall(method).
func BenchmarkE4ScoutSpeedup(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 64, edge: 300, seed: 4})
	neuron, branch, _ := m.Circuit.LongestPath()
	cfg := core.ExploreConfig{ThinkTime: 500 * time.Millisecond}
	for _, pf := range m.Prefetchers() {
		pf := pf
		b.Run(pf.Name(), func(b *testing.B) {
			var run prefetch.RunStats
			for i := 0; i < b.N; i++ {
				var err error
				run, err = m.Explore(neuron, branch, pf, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(run.Latency)/float64(time.Millisecond), "stall-ms")
			b.ReportMetric(100*run.Accuracy(), "accuracy-%")
			b.ReportMetric(float64(run.DemandReads), "demand-pages")
		})
	}
}

// BenchmarkE5JoinMethods reproduces Figure 7 and the §4.1 claims: the
// synapse join per algorithm on a layered circuit. Metrics: pairwise tests
// and auxiliary memory. NestedLoop is benchmarked on a reduced region to
// keep the quadratic baseline affordable.
func BenchmarkE5JoinMethods(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 128, edge: 350, layered: true, seed: 5})
	axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
	smallA, smallD := m.SynapseInputs(geom.BoxAround(m.Circuit.Params.Volume.Center(), 60))
	algs := m.JoinAlgorithms()
	for _, alg := range algs {
		alg := alg
		a, d := axons, dendrites
		if alg.Name() == "NestedLoop" {
			a, d = smallA, smallD
		}
		b.Run(alg.Name(), func(b *testing.B) {
			var st join.Stats
			for i := 0; i < b.N; i++ {
				st = alg.Join(a, d, 2.0, func(join.Pair) {})
			}
			b.ReportMetric(float64(st.BoxTests+st.Comparisons), "pairtests")
			b.ReportMetric(float64(st.ExtraBytes), "auxbytes")
			b.ReportMetric(float64(st.Results), "pairs")
		})
	}
}

// BenchmarkE6Scale reproduces the §1 scaling narrative: FLAT index build
// time across dataset sizes at constant density. ns/op is the build time;
// the elements metric gives the size axis.
func BenchmarkE6Scale(b *testing.B) {
	for _, neurons := range []int{32, 128, 512} {
		neurons := neurons
		edge := 250.0 * cbrtf(float64(neurons)/32.0)
		b.Run(sub("neurons", neurons), func(b *testing.B) {
			p := circuit.DefaultParams()
			p.Neurons = neurons
			p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(edge, edge, edge))
			p.Seed = 6
			c, err := circuit.Build(p)
			if err != nil {
				b.Fatal(err)
			}
			items := make([]rtree.Item, len(c.Elements))
			for i := range c.Elements {
				items[i] = rtree.Item{Box: c.Elements[i].Bounds(), ID: c.Elements[i].ID}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := flat.Build(items, flat.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(items)), "elements")
		})
	}
}

// BenchmarkAblationFLATGranularity ablates FLAT's page size (the page-level
// vs element-level neighborhood trade-off of DESIGN.md: page size 1 is an
// element-level graph).
func BenchmarkAblationFLATGranularity(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 64, edge: 300, seed: 7})
	items := make([]rtree.Item, len(m.Circuit.Elements))
	for i := range m.Circuit.Elements {
		items[i] = rtree.Item{Box: m.Circuit.Elements[i].Bounds(), ID: m.Circuit.Elements[i].ID}
	}
	q := geom.BoxAround(m.Circuit.Params.Volume.Center(), 40)
	for _, pageSize := range []int{4, 16, 64, 256} {
		pageSize := pageSize
		b.Run(sub("pagesize", pageSize), func(b *testing.B) {
			opts := flat.DefaultOptions()
			opts.PageSize = pageSize
			idx, err := flat.Build(items, opts)
			if err != nil {
				b.Fatal(err)
			}
			gs := idx.GraphStats()
			b.ResetTimer()
			var pages int64
			for i := 0; i < b.N; i++ {
				st := idx.Query(q, nil, func(int32) {})
				pages += st.PagesRead
			}
			b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
			b.ReportMetric(gs.AvgDegree, "avgdegree")
			b.ReportMetric(float64(gs.Edges), "graphedges")
		})
	}
}

// BenchmarkAblationTOUCHDepth ablates TOUCH's hierarchical assignment depth:
// depth 1 degenerates toward an indexed nested loop and shows why deep
// assignment matters.
func BenchmarkAblationTOUCHDepth(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 128, edge: 350, layered: true, seed: 5})
	axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
	for _, depth := range []int{1, 2, 0} { // 0 = unlimited
		depth := depth
		b.Run(sub("maxdepth", depth), func(b *testing.B) {
			alg := &touch.Touch{Opts: touch.Options{MaxAssignDepth: depth}}
			var st join.Stats
			for i := 0; i < b.N; i++ {
				st = alg.Join(axons, dendrites, 2.0, func(join.Pair) {})
			}
			b.ReportMetric(float64(st.BoxTests+st.Comparisons), "pairtests")
			b.ReportMetric(float64(st.NodePairs), "nodevisits")
		})
	}
}

// BenchmarkAblationBufferPool ablates the buffer-pool size under the E4
// walkthrough: small pools evict prefetched pages before they are used.
func BenchmarkAblationBufferPool(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 64, edge: 300, seed: 4})
	neuron, branch, _ := m.Circuit.LongestPath()
	sc := scout.New(scout.Options{})
	for _, pool := range []int{8, 64, 0} { // 0 = whole dataset
		pool := pool
		b.Run(sub("poolpages", pool), func(b *testing.B) {
			cfg := core.ExploreConfig{ThinkTime: 500 * time.Millisecond, PoolPages: pool}
			var run prefetch.RunStats
			for i := 0; i < b.N; i++ {
				var err error
				run, err = m.Explore(neuron, branch, sc, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(run.Latency)/float64(time.Millisecond), "stall-ms")
			b.ReportMetric(100*run.Accuracy(), "accuracy-%")
		})
	}
}

// BenchmarkHarnessE1 runs the full E1 harness once per iteration, the exact
// code path behind cmd/flatbench; heavy, so it is guarded for -short runs.
func BenchmarkHarnessE1(b *testing.B) {
	if testing.Short() {
		b.Skip("harness bench skipped in -short mode")
	}
	cfg := experiments.E1Config{
		Densities: []int{16, 64}, Edge: 250, QueryRadius: 25, Queries: 4, Seed: 21,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunE1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// sub builds a sub-benchmark name.
func sub(k string, v int) string {
	return k + "=" + strconv.Itoa(v)
}

func cbrtf(x float64) float64 { return math.Cbrt(x) }

// BenchmarkTOUCHParallelWorkers measures the probe-phase scaling of the
// parallel TOUCH extension (the original system ran on multicore nodes).
func BenchmarkTOUCHParallelWorkers(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 128, edge: 350, layered: true, seed: 5})
	axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(sub("workers", workers), func(b *testing.B) {
			alg := &touch.Touch{Opts: touch.Options{Workers: workers}}
			var pairs int64
			for i := 0; i < b.N; i++ {
				pairs = 0
				alg.Join(axons, dendrites, 2.0, func(join.Pair) { pairs++ })
			}
			b.ReportMetric(float64(pairs), "pairs")
		})
	}
}

// BenchmarkPBSMProbeWorkers measures the probe-phase scaling of the
// parallel PBSM: the cell-by-cell join is embarrassingly parallel once the
// reference-point dedup makes cells independent. probe-ms/op isolates the
// parallelized phase; compare workers=1 against workers>=4 for the speedup
// (≈linear on multicore hardware; a single-CPU container shows ≈1×).
func BenchmarkPBSMProbeWorkers(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 128, edge: 350, layered: true, seed: 5})
	axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(sub("workers", workers), func(b *testing.B) {
			alg := join.PBSM{Workers: workers}
			var st join.Stats
			var probe time.Duration
			for i := 0; i < b.N; i++ {
				st = alg.Join(axons, dendrites, 2.0, func(join.Pair) {})
				probe += st.ProbeTime
			}
			b.ReportMetric(float64(probe)/float64(b.N)/1e6, "probe-ms/op")
			b.ReportMetric(float64(st.Results), "pairs")
		})
	}
}

// BenchmarkS3ProbeWorkers measures the probe-phase scaling of the parallel
// S3: the frontier expansion hands each worker an independent subtree pair.
func BenchmarkS3ProbeWorkers(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 128, edge: 350, layered: true, seed: 5})
	axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(sub("workers", workers), func(b *testing.B) {
			alg := join.S3{Workers: workers}
			var st join.Stats
			var probe time.Duration
			for i := 0; i < b.N; i++ {
				st = alg.Join(axons, dendrites, 2.0, func(join.Pair) {})
				probe += st.ProbeTime
			}
			b.ReportMetric(float64(probe)/float64(b.N)/1e6, "probe-ms/op")
			b.ReportMetric(float64(st.Results), "pairs")
		})
	}
}

// BenchmarkFLATBatchQueryWorkers measures batched concurrent range queries
// against the FLAT index — the multi-user serving regime. ns/op is the time
// to drain the whole batch; pages/op must be identical across worker counts
// (the determinism guarantee).
func BenchmarkFLATBatchQueryWorkers(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 256, edge: 300, seed: 1})
	vol := m.Circuit.Params.Volume
	c := vol.Center()
	span := vol.Size().Scale(0.25)
	queries := make([]geom.AABB, 64)
	for i := range queries {
		off := geom.V(
			span.X*float64(i%4-2)*0.4,
			span.Y*float64((i/4)%4-2)*0.4,
			span.Z*float64((i/16)%4-2)*0.4,
		)
		queries[i] = geom.BoxAround(c.Add(off), 25)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(sub("workers", workers), func(b *testing.B) {
			var pages, results int64
			for i := 0; i < b.N; i++ {
				sts := m.Flat.BatchQuery(queries, nil, workers, nil)
				agg := flat.Aggregate(sts)
				pages += agg.PagesRead
				results += agg.Results
			}
			b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
			b.ReportMetric(float64(results)/float64(b.N), "results/op")
		})
	}
}

// BenchmarkRTreeBatchQueryWorkers is the R-tree counterpart of the FLAT
// batch bench, over the same query set shape.
func BenchmarkRTreeBatchQueryWorkers(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 256, edge: 300, seed: 1})
	queries := e1Queries(m)
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(sub("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.RTree.BatchQuery(queries, workers, nil)
			}
		})
	}
}

// BenchmarkCircuitBuildWorkers measures parallel tissue generation: the
// morphology phase dominates a build and every neuron is independently
// seeded, so the phase scales with cores while staying bit-deterministic.
func BenchmarkCircuitBuildWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(sub("workers", workers), func(b *testing.B) {
			p := circuit.DefaultParams()
			p.Neurons = 64
			p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(300, 300, 300))
			p.Seed = 12
			p.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := circuit.Build(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRTreeOps measures the building-block index operations other
// packages lean on.
func BenchmarkRTreeOps(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 64, edge: 300, seed: 8})
	items := make([]rtree.Item, len(m.Circuit.Elements))
	for i := range m.Circuit.Elements {
		items[i] = rtree.Item{Box: m.Circuit.Elements[i].Bounds(), ID: m.Circuit.Elements[i].ID}
	}
	b.Run("STRBulkLoad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rtree.STR(items, 16); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(items)), "items")
	})
	tr, err := rtree.STR(items, 16)
	if err != nil {
		b.Fatal(err)
	}
	q := geom.BoxAround(m.Circuit.Params.Volume.Center(), 30)
	b.Run("RangeQuery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.Query(q, func(rtree.Item) {})
		}
	})
	b.Run("SeedInRange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr.SeedInRange(q)
		}
	})
	b.Run("KNN16", func(b *testing.B) {
		p := m.Circuit.Params.Volume.Center()
		for i := 0; i < b.N; i++ {
			tr.KNN(p, 16)
		}
	})
}

// BenchmarkCircuitGeneration measures the synthetic-data substrate itself.
func BenchmarkCircuitGeneration(b *testing.B) {
	for _, neurons := range []int{16, 64} {
		neurons := neurons
		b.Run(sub("neurons", neurons), func(b *testing.B) {
			p := circuit.DefaultParams()
			p.Neurons = neurons
			p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(300, 300, 300))
			var elems int
			for i := 0; i < b.N; i++ {
				c, err := circuit.Build(p)
				if err != nil {
					b.Fatal(err)
				}
				elems = len(c.Elements)
			}
			b.ReportMetric(float64(elems), "elements")
		})
	}
}

// BenchmarkAblationWarmCache reruns the E1 comparison through buffer pools:
// with both indexes' pages cached, repeated queries cost only hits, so the
// comparison isolates the cold-read footprints (the regime of the demo's
// live statistics, where the audience re-queries nearby regions).
func BenchmarkAblationWarmCache(b *testing.B) {
	m := benchModel(b, modelKey{neurons: 128, edge: 300, seed: 9})
	q := geom.BoxAround(m.Circuit.Params.Volume.Center(), 30)

	b.Run("FLAT", func(b *testing.B) {
		pool, err := pager.NewBufferPool(m.Flat.Store(), m.Flat.NumPages())
		if err != nil {
			b.Fatal(err)
		}
		m.Flat.Query(q, pool, func(int32) {}) // warm
		cold := pool.Stats().DemandReads
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Flat.Query(q, pool, func(int32) {})
		}
		b.ReportMetric(float64(cold), "cold-pages")
		b.ReportMetric(float64(pool.Stats().DemandReads-cold), "warm-misses")
	})
	b.Run("PagedRTree", func(b *testing.B) {
		pt, err := rtree.NewPaged(m.RTree)
		if err != nil {
			b.Fatal(err)
		}
		pool, err := pager.NewBufferPool(pt.Store(), pt.NumPages())
		if err != nil {
			b.Fatal(err)
		}
		pt.Query(q, pool, func(rtree.Item) {}) // warm
		cold := pool.Stats().DemandReads
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pt.Query(q, pool, func(rtree.Item) {})
		}
		b.ReportMetric(float64(cold), "cold-pages")
		b.ReportMetric(float64(pool.Stats().DemandReads-cold), "warm-misses")
	})
}
