package bench

// The differential harness: every join algorithm — serial and parallel —
// must emit exactly the same pair set on the same inputs, and every parallel
// execution path must reproduce its serial output. This is the guarantee the
// parallel layer (internal/parallel) is built around: slot-ordered merges
// make worker count unobservable. NestedLoop is the oracle; its only filter
// is the box test, so any disagreement localizes a bug in the cleverer
// algorithm.

import (
	"sort"
	"testing"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/geom"
	"neurospatial/internal/join"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
	"neurospatial/internal/touch"
)

// diffModel builds a small seeded tissue for differential runs. Uniform and
// layered (cortically skewed) variants cover the density regimes that
// separate space-oriented from data-oriented partitioning.
func diffModel(t testing.TB, neurons int, layered bool, seed int64) *core.Model {
	t.Helper()
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(220, 220, 220))
	p.Seed = seed
	p.Workers = -1
	if layered {
		p.Layers = circuit.CorticalLayers()
	}
	m, err := core.BuildModel(p, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func collectPairs(alg join.Algorithm, a, b []join.Object, eps float64) []join.Pair {
	var out []join.Pair
	alg.Join(a, b, eps, func(p join.Pair) { out = append(out, p) })
	return out
}

func sortPairs(ps []join.Pair) []join.Pair {
	out := make([]join.Pair, len(ps))
	copy(out, ps)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func pairsEqual(a, b []join.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestJoinAlgorithmsAgree asserts that NestedLoop, SweepLine, PBSM, S3 and
// TOUCH — each in serial and, where supported, parallel form — emit
// identical sorted pair sets across eps values on both uniform and skewed
// tissues.
func TestJoinAlgorithmsAgree(t *testing.T) {
	const workers = 4
	for _, tissue := range []struct {
		name    string
		layered bool
		seed    int64
	}{
		{name: "uniform", layered: false, seed: 101},
		{name: "layered", layered: true, seed: 202},
	} {
		t.Run(tissue.name, func(t *testing.T) {
			m := diffModel(t, 10, tissue.layered, tissue.seed)
			axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
			if len(axons) == 0 || len(dendrites) == 0 {
				t.Fatalf("degenerate tissue: %d axons, %d dendrites", len(axons), len(dendrites))
			}
			algs := []join.Algorithm{
				join.NestedLoop{},
				join.SweepLine{},
				join.PBSM{},
				join.PBSM{Workers: workers},
				join.PBSM{PerCell: 4, Workers: workers},
				join.S3{},
				join.S3{Workers: workers},
				&touch.Touch{},
				&touch.Touch{Opts: touch.Options{Workers: workers}},
			}
			names := []string{
				"NestedLoop", "SweepLine",
				"PBSM", "PBSM-par", "PBSM-fine-par",
				"S3", "S3-par",
				"TOUCH", "TOUCH-par",
			}
			for _, eps := range []float64{0.5, 2.0, 5.0} {
				oracle := sortPairs(collectPairs(algs[0], axons, dendrites, eps))
				if eps >= 2.0 && len(oracle) == 0 {
					t.Errorf("eps=%v: oracle found no pairs — workload degenerate", eps)
				}
				for i, alg := range algs[1:] {
					got := sortPairs(collectPairs(alg, axons, dendrites, eps))
					if !pairsEqual(got, oracle) {
						t.Errorf("eps=%v: %s emitted %d pairs, oracle %d (or content differs)",
							eps, names[i+1], len(got), len(oracle))
					}
				}
			}
		})
	}
}

// TestParallelJoinOrderMatchesSerial asserts the stronger property the
// parallel layer promises: not just the same pair *set* but the same
// emission *sequence* as the serial run, for several worker counts.
func TestParallelJoinOrderMatchesSerial(t *testing.T) {
	m := diffModel(t, 10, true, 303)
	axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
	const eps = 2.0
	for _, tc := range []struct {
		name     string
		serial   join.Algorithm
		parallel func(workers int) join.Algorithm
	}{
		{
			name:   "PBSM",
			serial: join.PBSM{},
			parallel: func(w int) join.Algorithm {
				return join.PBSM{Workers: w}
			},
		},
		{
			name:   "S3",
			serial: join.S3{},
			parallel: func(w int) join.Algorithm {
				return join.S3{Workers: w}
			},
		},
		{
			name:   "TOUCH",
			serial: &touch.Touch{},
			parallel: func(w int) join.Algorithm {
				return &touch.Touch{Opts: touch.Options{Workers: w}}
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := collectPairs(tc.serial, axons, dendrites, eps)
			if len(want) == 0 {
				t.Fatal("serial run found no pairs — workload degenerate")
			}
			for _, w := range []int{2, 3, 8} {
				got := collectPairs(tc.parallel(w), axons, dendrites, eps)
				if !pairsEqual(got, want) {
					t.Errorf("workers=%d: emission sequence diverged from serial "+
						"(%d pairs vs %d)", w, len(got), len(want))
				}
			}
		})
	}
}

// TestS3ParallelStatsMatchSerial pins down the S3 design point that the
// frontier expansion performs exactly the recursion's pruning: all counters,
// not just results, are worker-count independent.
func TestS3ParallelStatsMatchSerial(t *testing.T) {
	m := diffModel(t, 8, false, 404)
	axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
	serial := join.S3{}.Join(axons, dendrites, 2.0, func(join.Pair) {})
	for _, w := range []int{2, 4} {
		par := join.S3{Workers: w}.Join(axons, dendrites, 2.0, func(join.Pair) {})
		if par.NodePairs != serial.NodePairs || par.BoxTests != serial.BoxTests ||
			par.Comparisons != serial.Comparisons || par.Results != serial.Results {
			t.Errorf("workers=%d: stats diverged: parallel {pairs %d tests %d cmps %d res %d} "+
				"vs serial {%d %d %d %d}",
				w, par.NodePairs, par.BoxTests, par.Comparisons, par.Results,
				serial.NodePairs, serial.BoxTests, serial.Comparisons, serial.Results)
		}
	}
}

// TestBatchQueryMatchesSerial asserts that the FLAT and R-tree batch APIs
// reproduce a serial query loop exactly — visit order, per-query stats, and
// totals — for several worker counts, with and without a shared buffer pool.
func TestBatchQueryMatchesSerial(t *testing.T) {
	m := diffModel(t, 12, false, 505)
	vol := m.Circuit.Params.Volume
	var queries []geom.AABB
	c := vol.Center()
	span := vol.Size().Scale(0.3)
	for i := 0; i < 24; i++ {
		off := geom.V(
			span.X*float64(i%3-1)*0.5,
			span.Y*float64((i/3)%3-1)*0.5,
			span.Z*float64((i/9)%3-1)*0.5,
		)
		queries = append(queries, geom.BoxAround(c.Add(off), 12+float64(i)))
	}

	type hit struct {
		q  int
		id int32
	}
	var want []hit
	wantStats := m.Flat.BatchQuery(queries, nil, 1, func(q int, id int32) {
		want = append(want, hit{q, id})
	})
	for _, w := range []int{2, 4, 7} {
		var got []hit
		gotStats := m.Flat.BatchQuery(queries, nil, w, func(q int, id int32) {
			got = append(got, hit{q, id})
		})
		if len(got) != len(want) {
			t.Fatalf("FLAT workers=%d: %d hits, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("FLAT workers=%d: hit %d is %+v, want %+v", w, i, got[i], want[i])
			}
		}
		for qi := range wantStats {
			g, s := gotStats[qi], wantStats[qi]
			if g.SeedNodeAccesses != s.SeedNodeAccesses || g.PagesRead != s.PagesRead ||
				g.Reseeds != s.Reseeds || g.EntriesTested != s.EntriesTested ||
				g.Results != s.Results {
				t.Errorf("FLAT workers=%d: query %d stats %+v, want %+v", w, qi, g, s)
			}
		}
	}

	// Through a shared pool the hit/miss split may differ per worker
	// interleaving, but the result stream must not, and the pool accounting
	// identity must hold.
	poolStore := m.Flat.Store()
	for _, w := range []int{1, 4} {
		pool, err := pager.NewBufferPool(poolStore, 16)
		if err != nil {
			t.Fatal(err)
		}
		var got []hit
		m.Flat.BatchQuery(queries, pool, w, func(q int, id int32) {
			got = append(got, hit{q, id})
		})
		if len(got) != len(want) {
			t.Fatalf("FLAT+pool workers=%d: %d hits, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("FLAT+pool workers=%d: hit %d diverged", w, i)
			}
		}
		st := pool.Stats()
		if st.Hits+st.DemandReads == 0 {
			t.Errorf("FLAT+pool workers=%d: pool saw no traffic", w)
		}
	}

	// R-tree batch against its own serial loop.
	type rhit struct {
		q  int
		id int32
	}
	var rwant []rhit
	m.RTree.BatchQuery(queries, 1, func(q int, it rtree.Item) {
		rwant = append(rwant, rhit{q, it.ID})
	})
	for _, w := range []int{2, 5} {
		var rgot []rhit
		m.RTree.BatchQuery(queries, w, func(q int, it rtree.Item) {
			rgot = append(rgot, rhit{q, it.ID})
		})
		if len(rgot) != len(rwant) {
			t.Fatalf("RTree workers=%d: %d hits, want %d", w, len(rgot), len(rwant))
		}
		for i := range rgot {
			if rgot[i] != rwant[i] {
				t.Fatalf("RTree workers=%d: hit %d diverged", w, i)
			}
		}
	}
}

// TestCircuitBuildWorkerCountInvariant asserts parallel tissue generation is
// bit-identical to serial generation.
func TestCircuitBuildWorkerCountInvariant(t *testing.T) {
	base := circuit.DefaultParams()
	base.Neurons = 8
	base.Volume = geom.Box(geom.V(0, 0, 0), geom.V(150, 150, 150))
	base.Seed = 77

	serial := circuit.MustBuild(base)
	for _, w := range []int{2, 5, -1} {
		p := base
		p.Workers = w
		par := circuit.MustBuild(p)
		if len(par.Elements) != len(serial.Elements) {
			t.Fatalf("workers=%d: %d elements, serial %d", w, len(par.Elements), len(serial.Elements))
		}
		for i := range par.Elements {
			if par.Elements[i] != serial.Elements[i] {
				t.Fatalf("workers=%d: element %d differs: %+v vs %+v",
					w, i, par.Elements[i], serial.Elements[i])
			}
		}
		if par.Bounds != serial.Bounds {
			t.Errorf("workers=%d: bounds differ", w)
		}
	}
}

// TestEngineRoutedMatchesDirect is the tentpole differential: on a real
// tissue model, the engine layer's FLAT and R-tree contenders must emit
// exactly the hits and stats of the direct index calls, and the planner's
// routed batch must reproduce its chosen contender's serial run.
func TestEngineRoutedMatchesDirect(t *testing.T) {
	m := diffModel(t, 10, true, 606)
	vol := m.Circuit.Params.Volume
	c := vol.Center()
	var queries []geom.AABB
	for i := 0; i < 16; i++ {
		off := geom.V(
			vol.Size().X*0.25*float64(i%3-1)*0.5,
			vol.Size().Y*0.25*float64((i/3)%3-1)*0.5,
			vol.Size().Z*0.25*float64((i/9)%3-1)*0.5,
		)
		queries = append(queries, geom.BoxAround(c.Add(off), 12+float64(i)))
	}

	eflat, ertree := m.Engine.Index("flat"), m.Engine.Index("rtree")
	for qi, q := range queries {
		var direct []int32
		ds := m.Flat.Query(q, nil, func(id int32) { direct = append(direct, id) })
		var routed []int32
		es := eflat.Query(q, func(id int32) { routed = append(routed, id) })
		if len(direct) != len(routed) {
			t.Fatalf("flat query %d: %d routed hits, %d direct", qi, len(routed), len(direct))
		}
		for i := range direct {
			if direct[i] != routed[i] {
				t.Fatalf("flat query %d: hit %d diverged", qi, i)
			}
		}
		if es.PagesRead != ds.PagesRead || es.IndexReads != ds.SeedNodeAccesses ||
			es.Results != ds.Results {
			t.Errorf("flat query %d: engine stats %+v vs direct %+v", qi, es, ds)
		}

		var dtree []int32
		ts := m.RTree.Query(q, func(it rtree.Item) { dtree = append(dtree, it.ID) })
		var rtreeRouted []int32
		rs := ertree.Query(q, func(id int32) { rtreeRouted = append(rtreeRouted, id) })
		if len(dtree) != len(rtreeRouted) {
			t.Fatalf("rtree query %d: %d routed hits, %d direct", qi, len(rtreeRouted), len(dtree))
		}
		for i := range dtree {
			if dtree[i] != rtreeRouted[i] {
				t.Fatalf("rtree query %d: hit %d diverged", qi, i)
			}
		}
		if rs.PagesRead != ts.NodeAccesses() || rs.Results != ts.Results {
			t.Errorf("rtree query %d: engine stats %+v vs direct %+v", qi, rs, ts)
		}
	}

	// Planner-routed batch == chosen contender's serial loop, per worker count.
	type hit struct {
		q  int
		id int32
	}
	_, decision := m.Engine.Run(queries, 1, nil)
	var want []hit
	for qi, q := range queries {
		qi := qi
		decision.Index.Query(q, func(id int32) { want = append(want, hit{qi, id}) })
	}
	for _, w := range []int{1, 3, 6} {
		var got []hit
		_, d := m.Engine.Run(queries, w, func(q int, id int32) { got = append(got, hit{q, id}) })
		if d.Index != decision.Index {
			t.Fatalf("workers=%d: plan flipped from %s to %s", w, decision.Index.Name(), d.Index.Name())
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d hits, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: hit %d diverged", w, i)
			}
		}
	}
}
