package bench

// Cross-module integration tests: these exercise the full pipeline the demo
// tool runs — generate tissue, serialize it, index it, query it with every
// engine, explore it with every prefetcher, join it with every algorithm —
// and check that all paths agree with each other and with brute-force
// oracles.

import (
	"bytes"
	"testing"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/grid"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

func integrationModel(t *testing.T) *core.Model {
	t.Helper()
	p := circuit.DefaultParams()
	p.Neurons = 24
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(250, 250, 250))
	p.Layers = circuit.CorticalLayers()
	p.Seed = 99
	m, err := core.BuildModel(p, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIntegrationQueryEnginesAgree runs the same queries through FLAT, the
// R-tree, a uniform grid and the brute-force oracle.
func TestIntegrationQueryEnginesAgree(t *testing.T) {
	m := integrationModel(t)
	boxes := make([]geom.AABB, len(m.Circuit.Elements))
	for i := range m.Circuit.Elements {
		boxes[i] = m.Circuit.Elements[i].Bounds()
	}
	g, err := grid.NewAuto(m.Circuit.Bounds, boxes, 8)
	if err != nil {
		t.Fatal(err)
	}
	queries := []geom.AABB{
		geom.BoxAround(geom.V(125, 125, 125), 30),
		geom.BoxAround(geom.V(50, 200, 80), 45),
		geom.BoxAround(geom.V(240, 20, 240), 25),
		geom.BoxAround(geom.V(125, 10, 125), 60), // dense bottom layer
		geom.BoxAround(geom.V(-40, -40, -40), 40),
	}
	for qi, q := range queries {
		flatIDs := map[int32]bool{}
		m.Flat.Query(q, nil, func(id int32) { flatIDs[id] = true })
		treeIDs := map[int32]bool{}
		m.RTree.Query(q, func(it rtree.Item) { treeIDs[it.ID] = true })
		gridIDs := map[int32]bool{}
		g.Query(q, func(i int32) { gridIDs[m.Circuit.Elements[i].ID] = true })

		for i := range boxes {
			want := boxes[i].Intersects(q)
			id := m.Circuit.Elements[i].ID
			if flatIDs[id] != want {
				t.Fatalf("query %d: FLAT wrong for element %d", qi, id)
			}
			if treeIDs[id] != want {
				t.Fatalf("query %d: R-tree wrong for element %d", qi, id)
			}
			if gridIDs[id] != want {
				t.Fatalf("query %d: grid wrong for element %d", qi, id)
			}
		}
	}
}

// TestIntegrationSerializeRebuildQuery round-trips the circuit through the
// binary format and verifies the rebuilt index answers identically.
func TestIntegrationSerializeRebuildQuery(t *testing.T) {
	m := integrationModel(t)
	var buf bytes.Buffer
	if err := circuit.WriteElements(&buf, m.Circuit.Elements); err != nil {
		t.Fatal(err)
	}
	elems, err := circuit.ReadElements(&buf)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]rtree.Item, len(elems))
	for i := range elems {
		items[i] = rtree.Item{Box: elems[i].Bounds(), ID: elems[i].ID}
	}
	idx, err := flat.Build(items, flat.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := geom.BoxAround(geom.V(125, 125, 125), 40)
	orig := map[int32]bool{}
	m.Flat.Query(q, nil, func(id int32) { orig[id] = true })
	rebuilt := map[int32]bool{}
	idx.Query(q, nil, func(id int32) { rebuilt[id] = true })
	if len(orig) != len(rebuilt) {
		t.Fatalf("rebuilt index: %d vs %d results", len(rebuilt), len(orig))
	}
	for id := range orig {
		if !rebuilt[id] {
			t.Fatalf("rebuilt index missed %d", id)
		}
	}
}

// TestIntegrationExploreConsistency verifies every prefetcher returns
// identical query results and that prefetching never makes latency worse
// with an adequate pool.
func TestIntegrationExploreConsistency(t *testing.T) {
	m := integrationModel(t)
	neuron, branch, _ := m.Circuit.LongestPath()
	cfg := core.ExploreConfig{ThinkTime: 400 * time.Millisecond}
	var baseElems int64 = -1
	var baseLatency time.Duration
	for _, pf := range m.Prefetchers() {
		run, err := m.Explore(neuron, branch, pf, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if baseElems == -1 {
			baseElems = run.Elements
			baseLatency = run.Latency
			continue
		}
		if run.Elements != baseElems {
			t.Fatalf("%s returned %d elements, baseline %d", pf.Name(), run.Elements, baseElems)
		}
		if run.Latency > baseLatency {
			t.Errorf("%s latency %v worse than no prefetching %v", pf.Name(), run.Latency, baseLatency)
		}
	}
}

// TestIntegrationJoinAllAlgorithmsOnTissue verifies all five join algorithms
// agree on the synapse workload end to end.
func TestIntegrationJoinAllAlgorithmsOnTissue(t *testing.T) {
	m := integrationModel(t)
	region := geom.BoxAround(geom.V(125, 60, 125), 70) // spans the dense layers
	var base []core.Synapse
	for i, alg := range m.JoinAlgorithms() {
		syn, _ := m.FindSynapses(region, 2.0, alg)
		if i == 0 {
			base = syn
			continue
		}
		if len(syn) != len(base) {
			t.Fatalf("%s: %d synapses, baseline %d", alg.Name(), len(syn), len(base))
		}
		for k := range syn {
			if syn[k] != base[k] {
				t.Fatalf("%s: synapse %d differs", alg.Name(), k)
			}
		}
	}
}

// TestIntegrationDeterminism builds everything twice and compares outputs
// exactly: the whole stack must be reproducible from seeds.
func TestIntegrationDeterminism(t *testing.T) {
	m1 := integrationModel(t)
	m2 := integrationModel(t)
	if len(m1.Circuit.Elements) != len(m2.Circuit.Elements) {
		t.Fatal("circuit sizes differ")
	}
	for i := range m1.Circuit.Elements {
		if m1.Circuit.Elements[i] != m2.Circuit.Elements[i] {
			t.Fatalf("element %d differs between builds", i)
		}
	}
	q := geom.BoxAround(geom.V(100, 40, 100), 35)
	s1 := m1.Flat.QueryTraced(q, nil, func(int32) {})
	s2 := m2.Flat.QueryTraced(q, nil, func(int32) {})
	if len(s1.CrawlOrder) != len(s2.CrawlOrder) {
		t.Fatal("crawl orders differ in length")
	}
	for i := range s1.CrawlOrder {
		if s1.CrawlOrder[i] != s2.CrawlOrder[i] {
			t.Fatal("crawl order differs between identical builds")
		}
	}
}

// TestIntegrationPagedQueryWithTinyPool runs FLAT through a pathologically
// small buffer pool and verifies correctness is unaffected by thrashing.
func TestIntegrationPagedQueryWithTinyPool(t *testing.T) {
	m := integrationModel(t)
	pool, err := pager.NewBufferPool(m.Flat.Store(), 2)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.BoxAround(geom.V(125, 60, 125), 50)
	cold := map[int32]bool{}
	m.Flat.Query(q, pool, func(id int32) { cold[id] = true })
	direct := map[int32]bool{}
	m.Flat.Query(q, nil, func(id int32) { direct[id] = true })
	if len(cold) != len(direct) {
		t.Fatalf("thrashing pool changed results: %d vs %d", len(cold), len(direct))
	}
	if pool.Stats().Evictions == 0 {
		t.Error("tiny pool never evicted — test not exercising thrashing")
	}
}
