// Command synapse-detection reproduces the §4.2 demo station: run the
// synapse-placement distance join on a chosen region with every available
// method and print the runtime charts the demo updates — time spent, memory
// footprint, and pairwise comparisons — plus a sample of the synapse
// locations the demo highlights in Figure 7.
//
// Usage:
//
//	go run ./examples/synapse-detection [-neurons N] [-eps E] [-skip-slow]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/geom"
	"neurospatial/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("synapse-detection: ")
	neurons := flag.Int("neurons", 64, "neurons in the model")
	eps := flag.Float64("eps", 2.0, "synaptic gap distance (µm)")
	skipSlow := flag.Bool("skip-slow", false, "skip the quadratic NestedLoop baseline")
	flag.Parse()

	params := circuit.DefaultParams()
	params.Neurons = *neurons
	params.Volume = geom.Box(geom.V(0, 0, 0), geom.V(350, 350, 350))
	model, err := core.BuildModel(params, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	region := model.Circuit.Bounds
	axons, dendrites := model.SynapseInputs(region)
	fmt.Printf("model: %d neurons; join operands: %d axon × %d dendrite segments, ε = %.1f µm\n\n",
		*neurons, len(axons), len(dendrites), *eps)

	tb := stats.NewTable("synapse-placement join (the §4.2 runtime charts)",
		"method", "synapses", "time", "comparisons", "memory")
	var sample []core.Synapse
	for _, alg := range model.JoinAlgorithms() {
		if *skipSlow && alg.Name() == "NestedLoop" {
			continue
		}
		syn, st := model.FindSynapses(region, *eps, alg)
		if sample == nil {
			sample = syn
		} else if len(syn) != len(sample) {
			log.Fatalf("%s disagrees: %d vs %d synapses", alg.Name(), len(syn), len(sample))
		}
		tb.AddRow(
			alg.Name(),
			len(syn),
			stats.Dur(st.TotalTime()),
			stats.Count(st.Comparisons),
			stats.Bytes(st.ExtraBytes),
		)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfirst synapse locations (highlighted in the demo's 3-D view):\n")
	for i, s := range sample {
		if i == 5 {
			break
		}
		fmt.Printf("  axon %6d ↔ dendrite %6d at (%6.1f, %6.1f, %6.1f)\n",
			s.Axon, s.Dendrite, s.Location.X, s.Location.Y, s.Location.Z)
	}
}
