// Command quickstart is the smallest end-to-end tour of the library: build a
// tissue model, query it with FLAT (§2), explore it with SCOUT (§3), and
// discover synapses with TOUCH (§4) — the three stations of the SIGMOD'13
// demo in one program.
//
// Usage:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/geom"
	"neurospatial/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. Build a model: 48 neurons in a 300 µm cube of simulated cortex.
	params := circuit.DefaultParams()
	params.Neurons = 48
	params.Volume = geom.Box(geom.V(0, 0, 0), geom.V(300, 300, 300))
	model, err := core.BuildModel(params, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d neurons, %d segments, %d FLAT pages\n",
		len(model.Circuit.Morphologies), len(model.Circuit.Elements), model.Flat.NumPages())

	// 2. Query it (§2): a range query in the center, FLAT vs R-tree.
	q := geom.BoxAround(geom.V(150, 150, 150), 40)
	cmp := model.CompareRangeQuery(q)
	tb := stats.NewTable("range query, 80 µm cube at the model center",
		"method", "pages read", "time")
	tb.AddRow("FLAT", cmp.FlatStats.TotalReads(), stats.Dur(cmp.FlatTime))
	tb.AddRow("R-Tree", cmp.RTreeStats.TotalReads(), stats.Dur(cmp.RTreeTime))
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("both returned %d elements\n\n", cmp.Results)

	// 3. Explore it (§3): follow the longest branch with SCOUT prefetching.
	neuron, branch, _ := model.Circuit.LongestPath()
	scout, err := model.PrefetcherByName("scout")
	if err != nil {
		log.Fatal(err)
	}
	none, err := model.PrefetcherByName("none")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.ExploreConfig{}
	base, err := model.Explore(neuron, branch, none, cfg)
	if err != nil {
		log.Fatal(err)
	}
	run, err := model.Explore(neuron, branch, scout, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("walkthrough of neuron %d branch %d: %d queries\n",
		neuron, branch, len(run.Steps))
	fmt.Printf("  no prefetch: %v stall, SCOUT: %v stall (%s speedup, %.0f%% accuracy)\n\n",
		base.Latency, run.Latency, stats.Speedup(base.Latency, run.Latency),
		100*run.Accuracy())

	// 4. Discover synapses (§4): TOUCH distance join in a sub-region.
	touchAlg, err := model.JoinByName("TOUCH")
	if err != nil {
		log.Fatal(err)
	}
	region := geom.BoxAround(geom.V(150, 150, 150), 75)
	synapses, jst := model.FindSynapses(region, 2.0, touchAlg)
	fmt.Printf("synapse discovery in a 150 µm cube: %d candidates in %v (%s comparisons)\n",
		len(synapses), jst.TotalTime(), stats.Count(jst.Comparisons))
	if len(synapses) > 0 {
		s := synapses[0]
		fmt.Printf("  first: axon elem %d ↔ dendrite elem %d at %v\n",
			s.Axon, s.Dendrite, s.Location)
	}
}
