// Command branch-following reproduces the §3.2 demo station: interactively
// walking through the model along a neuron branch with a selectable
// prefetching method. It runs the same scripted walkthrough under every
// method and prints the statistics panel of Figure 6 — total prefetched,
// correctly prefetched, and the stall the user felt.
//
// Usage:
//
//	go run ./examples/branch-following [-neurons N] [-stride S] [-radius R]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/geom"
	"neurospatial/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("branch-following: ")
	neurons := flag.Int("neurons", 48, "neurons in the model")
	stride := flag.Float64("stride", 8, "walkthrough step length (µm)")
	radius := flag.Float64("radius", 15, "query half-extent (µm)")
	think := flag.Duration("think", 500*time.Millisecond, "user think time per step")
	flag.Parse()

	params := circuit.DefaultParams()
	params.Neurons = *neurons
	params.Volume = geom.Box(geom.V(0, 0, 0), geom.V(300, 300, 300))
	model, err := core.BuildModel(params, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	neuron, branch, path := model.Circuit.LongestPath()
	fmt.Printf("following neuron %d, branch %d: %.0f µm path, %d segments in model\n\n",
		neuron, branch, pathLen(path), len(model.Circuit.Elements))

	cfg := core.ExploreConfig{Stride: *stride, Radius: *radius, ThinkTime: *think}
	tb := stats.NewTable("walk-through prefetching comparison (Figure 6 statistics)",
		"method", "queries", "stall", "speedup", "prefetched", "correct", "accuracy")
	var baseline time.Duration
	for _, p := range model.Prefetchers() {
		run, err := model.Explore(neuron, branch, p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if p.Name() == "none" {
			baseline = run.Latency
		}
		tb.AddRow(
			p.Name(),
			len(run.Steps),
			stats.Dur(run.Latency),
			stats.Speedup(baseline, run.Latency),
			run.PrefetchReads,
			run.PrefetchHits,
			stats.Ratio(run.PrefetchHits, run.PrefetchReads),
		)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSCOUT follows the branch's reconstructed skeleton, so its prefetches land" +
		"\nwhere the user goes next; extrapolation overshoots at every bend.")
}

func pathLen(path []geom.Vec) float64 {
	var l float64
	for i := 0; i+1 < len(path); i++ {
		l += path[i].Dist(path[i+1])
	}
	return l
}
