// Command tissue-stats reproduces the §2.1 use case: "FLAT is currently used
// by the neuroscientists to compute statistics (tissue density etc.) of the
// models they build". It slices the model into a grid of analysis regions,
// computes per-region tissue statistics with FLAT range queries, and prints
// the I/O cost next to what the element-level R-tree would have paid.
//
// Usage:
//
//	go run ./examples/tissue-stats [-neurons N] [-slices K]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/geom"
	"neurospatial/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tissue-stats: ")
	neurons := flag.Int("neurons", 64, "neurons in the model")
	slices := flag.Int("slices", 3, "analysis grid resolution per axis")
	flag.Parse()

	params := circuit.DefaultParams()
	params.Neurons = *neurons
	params.Volume = geom.Box(geom.V(0, 0, 0), geom.V(400, 400, 400))
	model, err := core.BuildModel(params, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d neurons, %d segments, mean density %.4f elems/µm³\n\n",
		*neurons, len(model.Circuit.Elements), model.Circuit.Density())

	k := *slices
	if k < 1 {
		log.Fatal("slices must be >= 1")
	}
	vol := params.Volume
	cell := vol.Size().Scale(1 / float64(k))

	tb := stats.NewTable(
		fmt.Sprintf("per-region tissue statistics (%dx%dx%d regions)", k, k, k),
		"region", "elements", "neurons", "length (µm)", "density", "FLAT pages", "R-tree pages")
	var flatTotal, rtreeTotal int64
	for iz := 0; iz < k; iz++ {
		for iy := 0; iy < k; iy++ {
			for ix := 0; ix < k; ix++ {
				min := geom.V(
					vol.Min.X+float64(ix)*cell.X,
					vol.Min.Y+float64(iy)*cell.Y,
					vol.Min.Z+float64(iz)*cell.Z,
				)
				region := geom.AABB{Min: min, Max: min.Add(cell)}
				ts := model.AnalyzeRegion(region)
				cmp := model.CompareRangeQuery(region)
				flatTotal += cmp.FlatStats.TotalReads()
				rtreeTotal += cmp.RTreeStats.TotalReads()
				tb.AddRow(
					fmt.Sprintf("(%d,%d,%d)", ix, iy, iz),
					ts.Elements,
					ts.Neurons,
					fmt.Sprintf("%.0f", ts.TotalLength),
					fmt.Sprintf("%.4f", ts.Density),
					cmp.FlatStats.TotalReads(),
					cmp.RTreeStats.TotalReads(),
				)
			}
		}
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntotal I/O: FLAT %s pages, R-tree %s pages (%.1fx less)\n",
		stats.Count(flatTotal), stats.Count(rtreeTotal),
		float64(rtreeTotal)/float64(flatTotal))
}
