// Command neurolint runs the repo's custom static analyzers — the
// multichecker for internal/analysis. It loads every package in the module,
// builds the interprocedural call-graph module once, applies each analyzer to
// the packages inside its scope, and exits nonzero if any diagnostic survives
// //lint:ignore filtering.
//
// Run it from the module root (the source importer resolves neurospatial/...
// imports through the module tree):
//
//	go run ./cmd/neurolint            # whole repo, all analyzers
//	go run ./cmd/neurolint -json      # machine-readable findings
//	go run ./cmd/neurolint -analyzers poolcheck,ctxpage
//	go run ./cmd/neurolint ./internal/engine
//
// Analyzer scopes: poolcheck and detorder cover internal/engine and
// internal/parallel (where the pooling and determinism contracts live);
// ctxpage covers internal/engine (the cancellation contract); snapref covers
// the snapshot-lifecycle surface (engine, core, experiments, cmd); lockorder
// covers the annotated mutexes in engine and core; fsyncorder and errcontract
// cover the durability layer; hotpath and nodeprecated cover the whole module
// — hotpath is annotation-driven and nodeprecated guards every internal
// caller.
//
// A full run (no -analyzers filter, no package arguments) also audits
// //lint:ignore directives: a directive that suppressed nothing, and whose
// named analyzers all ran over its package, is reported as stale and fails
// the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"neurospatial/internal/analysis"
	"neurospatial/internal/analysis/ctxpage"
	"neurospatial/internal/analysis/detorder"
	"neurospatial/internal/analysis/errcontract"
	"neurospatial/internal/analysis/fsyncorder"
	"neurospatial/internal/analysis/hotpath"
	"neurospatial/internal/analysis/lockorder"
	"neurospatial/internal/analysis/nodeprecated"
	"neurospatial/internal/analysis/poolcheck"
	"neurospatial/internal/analysis/snapref"
)

// scoped pairs an analyzer with the import-path prefixes it applies to;
// empty means the whole module.
type scoped struct {
	analyzer *analysis.Analyzer
	prefixes []string
}

var suite = []scoped{
	{poolcheck.Analyzer, []string{"neurospatial/internal/engine", "neurospatial/internal/parallel"}},
	{hotpath.Analyzer, nil},
	{ctxpage.Analyzer, []string{"neurospatial/internal/engine"}},
	{detorder.Analyzer, []string{"neurospatial/internal/engine", "neurospatial/internal/parallel"}},
	{nodeprecated.Analyzer, nil},
	{snapref.Analyzer, []string{"neurospatial/internal/engine", "neurospatial/internal/core", "neurospatial/internal/experiments", "neurospatial/cmd"}},
	{lockorder.Analyzer, []string{"neurospatial/internal/engine", "neurospatial/internal/core"}},
	{fsyncorder.Analyzer, []string{"neurospatial/internal/engine", "neurospatial/internal/durable"}},
	{errcontract.Analyzer, []string{"neurospatial/internal/durable"}},
}

// finding is one reported diagnostic in -json output.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Parse()

	if *list {
		for _, s := range suite {
			scope := "whole module"
			if len(s.prefixes) > 0 {
				scope = strings.Join(s.prefixes, ", ")
			}
			fmt.Printf("%-14s %s\n               scope: %s\n", s.analyzer.Name, s.analyzer.Doc, scope)
		}
		return
	}

	selected := map[string]bool{}
	if *names != "" {
		for _, n := range strings.Split(*names, ",") {
			selected[strings.TrimSpace(n)] = true
		}
		for n := range selected {
			if !knownAnalyzer(n) {
				fmt.Fprintf(os.Stderr, "neurolint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
		}
	}

	patterns := flag.Args()
	fullRun := len(selected) == 0 && len(patterns) == 0
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "neurolint: %v\n", err)
		os.Exit(2)
	}
	mod := analysis.BuildModule(pkgs)

	var findings []finding
	for _, s := range suite {
		if len(selected) > 0 && !selected[s.analyzer.Name] {
			continue
		}
		for _, pkg := range pkgs {
			if !inScope(pkg.ImportPath, s.prefixes) {
				continue
			}
			diags, err := analysis.Run(s.analyzer, pkg, mod)
			if err != nil {
				fmt.Fprintf(os.Stderr, "neurolint: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				p := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{p.Filename, p.Line, p.Column, d.Analyzer, d.Message})
			}
		}
	}
	if fullRun {
		findings = append(findings, staleIgnores(pkgs)...)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "neurolint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "neurolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// staleIgnores reports every //lint:ignore directive that suppressed nothing
// across the full suite run. A directive is only judged when each analyzer it
// names actually ran over its package (in scope), so scoped-out or unknown
// names never produce false positives.
func staleIgnores(pkgs []*analysis.Package) []finding {
	var out []finding
	for _, pkg := range pkgs {
		for _, dir := range analysis.Directives(pkg) {
			if analysis.Used(pkg, dir.Pos) {
				continue
			}
			judgeable := true
			for _, name := range dir.Names {
				if name == "*" {
					continue
				}
				s, ok := suiteEntry(name)
				if !ok || !inScope(pkg.ImportPath, s.prefixes) {
					judgeable = false
					break
				}
			}
			if !judgeable {
				continue
			}
			p := pkg.Fset.Position(dir.Pos)
			out = append(out, finding{p.Filename, p.Line, p.Column, "staleignore",
				fmt.Sprintf("stale //lint:ignore %s: the suppressed analyzer(s) report nothing here; delete the directive", strings.Join(dir.Names, ","))})
		}
	}
	return out
}

func suiteEntry(name string) (scoped, bool) {
	for _, s := range suite {
		if s.analyzer.Name == name {
			return s, true
		}
	}
	return scoped{}, false
}

func knownAnalyzer(name string) bool {
	_, ok := suiteEntry(name)
	return ok
}

func inScope(path string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
