// Command neurolint runs the repo's custom static analyzers — the
// multichecker for internal/analysis. It loads every package in the module,
// applies each analyzer to the packages inside its scope, and exits nonzero
// if any diagnostic survives //lint:ignore filtering.
//
// Run it from the module root (the source importer resolves neurospatial/...
// imports through the module tree):
//
//	go run ./cmd/neurolint            # whole repo, all analyzers
//	go run ./cmd/neurolint -analyzers poolcheck,ctxpage
//	go run ./cmd/neurolint ./internal/engine
//
// Analyzer scopes: poolcheck and detorder cover internal/engine and
// internal/parallel (where the pooling and determinism contracts live);
// ctxpage covers internal/engine (the cancellation contract); hotpath and
// nodeprecated cover the whole module — hotpath is annotation-driven and
// nodeprecated guards every internal caller.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"neurospatial/internal/analysis"
	"neurospatial/internal/analysis/ctxpage"
	"neurospatial/internal/analysis/detorder"
	"neurospatial/internal/analysis/hotpath"
	"neurospatial/internal/analysis/nodeprecated"
	"neurospatial/internal/analysis/poolcheck"
)

// scoped pairs an analyzer with the import-path prefixes it applies to;
// empty means the whole module.
type scoped struct {
	analyzer *analysis.Analyzer
	prefixes []string
}

var suite = []scoped{
	{poolcheck.Analyzer, []string{"neurospatial/internal/engine", "neurospatial/internal/parallel"}},
	{hotpath.Analyzer, nil},
	{ctxpage.Analyzer, []string{"neurospatial/internal/engine"}},
	{detorder.Analyzer, []string{"neurospatial/internal/engine", "neurospatial/internal/parallel"}},
	{nodeprecated.Analyzer, nil},
}

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "print the analyzer catalog and exit")
	flag.Parse()

	if *list {
		for _, s := range suite {
			scope := "whole module"
			if len(s.prefixes) > 0 {
				scope = strings.Join(s.prefixes, ", ")
			}
			fmt.Printf("%-14s %s\n               scope: %s\n", s.analyzer.Name, s.analyzer.Doc, scope)
		}
		return
	}

	selected := map[string]bool{}
	if *names != "" {
		for _, n := range strings.Split(*names, ",") {
			selected[strings.TrimSpace(n)] = true
		}
		for n := range selected {
			if !knownAnalyzer(n) {
				fmt.Fprintf(os.Stderr, "neurolint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "neurolint: %v\n", err)
		os.Exit(2)
	}

	bad := 0
	for _, s := range suite {
		if len(selected) > 0 && !selected[s.analyzer.Name] {
			continue
		}
		for _, pkg := range pkgs {
			if !inScope(pkg.ImportPath, s.prefixes) {
				continue
			}
			diags, err := analysis.Run(s.analyzer, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "neurolint: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "neurolint: %d finding(s)\n", bad)
		os.Exit(1)
	}
}

func knownAnalyzer(name string) bool {
	for _, s := range suite {
		if s.analyzer.Name == name {
			return true
		}
	}
	return false
}

func inScope(path string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
