package main

import (
	"testing"

	"neurospatial/internal/analysis"
)

// TestSuiteCleanOnRepo pins the whole module at zero findings. It is the
// regression test for the violations the suite caught when it was first run
// — the sharded scatter fanning out through the deprecated sub-index Query
// wrapper (sharded.go), and the durability findings the interprocedural
// analyzers surfaced (see internal/durable) — and the gate that keeps new
// ones out: the same check CI's lint-static job runs via
// `go run ./cmd/neurolint`. It also pins the stale-ignore audit at zero, so
// every surviving //lint:ignore in the tree still suppresses something.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	pkgs, err := analysis.Load("neurospatial/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	mod := analysis.BuildModule(pkgs)
	for _, s := range suite {
		for _, pkg := range pkgs {
			if !inScope(pkg.ImportPath, s.prefixes) {
				continue
			}
			diags, err := analysis.Run(s.analyzer, pkg, mod)
			if err != nil {
				t.Fatalf("%s on %s: %v", s.analyzer.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
			}
		}
	}
	for _, f := range staleIgnores(pkgs) {
		t.Errorf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
}
