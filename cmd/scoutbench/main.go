// Command scoutbench drives experiments E3 and E4: the SCOUT reproductions
// of Figure 5 (candidate-set pruning) and Figure 6 (walk-through speedup per
// prefetching method). It prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	go run ./cmd/scoutbench            # E4: speedup comparison
//	go run ./cmd/scoutbench -pruning   # E3: candidate pruning
//	go run ./cmd/scoutbench -index grid     # E4 served by another contender
//	go run ./cmd/scoutbench -shards 4  # E4 over the sharded engine index:
//	                                   # the same walkthroughs + prefetchers
//	                                   # (SCOUT included) served by a
//	                                   # 4-shard scatter-gather store
//	go run ./cmd/scoutbench -all       # both
//
//	go run ./cmd/scoutbench -kind knn -k 8  # one-off Session demo: a handful of
//	                                   # requests of that kind through the
//	                                   # planner-routed engine front door
//	go run ./cmd/scoutbench -kind range -limit 16   # paging demo: walk the
//	                                   # kind's result in cursor pages of 16
//	                                   # (-cursor resumes a printed token)
//	go run ./cmd/scoutbench -churn 3   # mutable-dataset demo: 3 mutation
//	                                   # batches, then the maintenance panel
//	                                   # and a mixed batch from the churned
//	                                   # snapshot
//
// Contradictory flag combinations (-shards with -index ≠ sharded, -k
// without -kind knn, -radius with a kind that has no radius, -limit without
// -kind, -cursor without -limit) are rejected with a one-line usage error
// instead of being silently ignored.
//
// The -workers flag follows the repository-wide convention (see README):
// 0 or 1 run serially, values > 1 use that many workers, negative values
// use one worker per CPU. It controls circuit construction; results are
// worker-count-invariant.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"neurospatial/internal/experiments"
	"neurospatial/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scoutbench: ")
	pruning := flag.Bool("pruning", false, "run E3 (candidate pruning)")
	sweep := flag.Bool("sweep", false, "run the walkthrough-length sweep (the 'up to 15x' series)")
	all := flag.Bool("all", false, "run every SCOUT experiment")
	workers := flag.Int("workers", -1, "circuit-construction workers (0 or 1: serial; negative: one per CPU)")
	index := flag.String("index", "", "engine contender serving the E4 walkthroughs (flat, rtree, grid, sharded)")
	shards := flag.Int("shards", 0, "serve E4 walkthroughs from the sharded engine index with this shard count (0: unsharded FLAT)")
	kind := flag.String("kind", "", "run a one-off Session demo of this query kind (range, knn, point, within) and exit")
	k := flag.Int("k", 8, "with -kind knn: the neighbor count")
	radius := flag.Float64("radius", 20, "with -kind range/within: the query radius")
	limit := flag.Int("limit", 0, "with -kind: page the demo's result in cursor pages of this size")
	cursor := flag.String("cursor", "", "with -kind and -limit: resume the page walk from this cursor token")
	churn := flag.Int("churn", 0, "run the mutable-dataset demo with this many mutation batches and exit")
	flag.Parse()

	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "scoutbench: %s\n", fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	if set["shards"] && set["index"] && *index != "sharded" {
		usageErr("-shards configures the sharded contender; it contradicts -index %q", *index)
	}
	if set["index"] && *index != "flat" && *index != "rtree" && *index != "grid" && *index != "sharded" {
		usageErr("-index must be flat, rtree, grid or sharded (got %q)", *index)
	}
	if set["k"] && *kind != "knn" {
		usageErr("-k applies only to -kind knn (got -kind %q)", *kind)
	}
	if set["radius"] && *kind != "range" && *kind != "within" {
		usageErr("-radius applies only to -kind range or within (got -kind %q)", *kind)
	}
	if set["churn"] && *churn <= 0 {
		usageErr("-churn needs a positive batch count (got %d)", *churn)
	}
	if set["limit"] && *kind == "" {
		usageErr("-limit pages the -kind demo; pass -kind too")
	}
	if set["cursor"] && !set["limit"] {
		usageErr("-cursor resumes a -limit page walk; pass -kind and -limit too")
	}

	if *churn > 0 {
		tables, err := experiments.RunChurnDemo(*churn, *workers)
		if err != nil {
			log.Fatal(err)
		}
		for _, tb := range tables {
			if err := tb.Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		return
	}
	if *kind != "" {
		var tb *stats.Table
		var err error
		if *limit > 0 {
			tb, err = experiments.RunPagingDemo(*kind, *k, *radius, *limit, *cursor, *workers)
		} else {
			tb, err = experiments.RunSessionDemo(*kind, *k, *radius, *workers)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := tb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *all || (!*pruning && !*sweep) {
		cfg := experiments.DefaultE4()
		cfg.Workers = *workers
		if *index != "" {
			cfg.Index = *index
		}
		if *shards > 0 {
			cfg.Index = "sharded"
			cfg.Shards = *shards
		}
		rows, err := experiments.RunE4(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E4Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *pruning {
		cfg := experiments.DefaultE3()
		cfg.Workers = *workers
		rows, err := experiments.RunE3(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E3Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *sweep {
		cfg := experiments.DefaultE4()
		cfg.Workers = *workers
		if *index != "" {
			cfg.Index = *index
		}
		if *shards > 0 {
			cfg.Index = "sharded"
			cfg.Shards = *shards
		}
		tb, err := experiments.E4LengthSweep(cfg, []float64{400, 900, 2500, 6000})
		if err != nil {
			log.Fatal(err)
		}
		if err := tb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
