// Command datagen generates synthetic tissue circuits and serializes their
// element arrays to disk — the repository's stand-in for the Blue Brain
// Project's model-building pipeline (see the substitution table in
// DESIGN.md). The written files are consumed by anything that wants a
// reproducible dataset without regenerating morphologies.
//
// Usage:
//
//	go run ./cmd/datagen -out circuit.nsc [-neurons N] [-edge E] [-seed S] [-layered]
//	go run ./cmd/datagen -out circuit.nsc -churn 3   # also simulate 3 mutation
//	                                                 # batches on the generated
//	                                                 # dataset and report the
//	                                                 # maintenance cost
//	go run ./cmd/datagen -info circuit.nsc
//
// -info and -out are mutually exclusive, and -churn applies only with -out;
// contradictory combinations are rejected with a one-line usage error
// instead of one flag silently winning.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"neurospatial/internal/circuit"
	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
	"neurospatial/internal/rtree"
	"neurospatial/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	out := flag.String("out", "", "output path for the generated circuit")
	info := flag.String("info", "", "print a summary of an existing circuit file and exit")
	neurons := flag.Int("neurons", 128, "number of neurons")
	edge := flag.Float64("edge", 350, "cubic volume edge (µm)")
	seed := flag.Int64("seed", 1, "generator seed")
	layered := flag.Bool("layered", false, "use the cortical layer density profile")
	workers := flag.Int("workers", -1, "morphology generation workers (0 or 1: serial; negative: one per CPU)")
	churn := flag.Int("churn", 0, "with -out: simulate this many mutation batches on the generated dataset and report the maintenance cost")
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "datagen: %s\n", fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	if *info != "" && *out != "" {
		usageErr("-info and -out are mutually exclusive")
	}
	if *churn < 0 {
		usageErr("-churn needs a non-negative batch count (got %d)", *churn)
	}
	if *churn > 0 && *out == "" {
		usageErr("-churn applies only with -out (there is no dataset to mutate)")
	}

	switch {
	case *info != "":
		if err := printInfo(*info); err != nil {
			log.Fatal(err)
		}
	case *out != "":
		if err := generate(*out, *neurons, *edge, *seed, *layered, *workers, *churn); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(path string, neurons int, edge float64, seed int64, layered bool, workers, churn int) error {
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(edge, edge, edge))
	p.Seed = seed
	p.Workers = workers
	if layered {
		p.Layers = circuit.CorticalLayers()
	}
	c, err := circuit.Build(p)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := circuit.WriteElements(f, c.Elements); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d neurons, %s elements, %s on disk (density %.4f elems/µm³)\n",
		path, neurons, stats.Count(int64(len(c.Elements))), stats.Bytes(st.Size()), c.Density())
	if churn > 0 {
		return churnReport(c, seed, churn)
	}
	return nil
}

// churnReport simulates batched mutations against a Dataset built over the
// generated circuit and prints the maintenance cost — what keeping this
// dataset's indexes current would cost per update batch, without a full
// rebuild. The written file is the pristine epoch-0 circuit; the churn is a
// simulation on top of it.
func churnReport(c *circuit.Circuit, seed int64, batches int) error {
	items := make([]rtree.Item, len(c.Elements))
	for i := range c.Elements {
		items[i] = rtree.Item{Box: c.Elements[i].Bounds(), ID: c.Elements[i].ID}
	}
	ds, err := engine.NewDataset(items, engine.DatasetOptions{Contenders: []string{"flat"}})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	vol := c.Params.Volume
	size := vol.Size()
	live := make([]int32, len(items))
	for i := range live {
		live[i] = int32(i)
	}
	for b := 0; b < batches; b++ {
		tx := ds.Begin()
		for i := 0; i < 64; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				p := geom.V(
					vol.Min.X+rng.Float64()*size.X,
					vol.Min.Y+rng.Float64()*size.Y,
					vol.Min.Z+rng.Float64()*size.Z,
				)
				live = append(live, tx.Insert(geom.BoxAround(p, 1+rng.Float64()*4)))
			} else {
				j := rng.Intn(len(live))
				tx.Delete(live[j])
				live = append(live[:j], live[j+1:]...)
			}
		}
		if _, err := tx.Commit(); err != nil {
			return err
		}
	}
	st := ds.Stats()
	tb := stats.NewTable(fmt.Sprintf("simulated churn: %d batches of 64 ops over the generated dataset", batches),
		"epoch", "live", "delta", "tombstones", "compactions", "layout shared/patched/appended")
	tb.AddRow(st.Epoch, st.Live, st.DeltaEntries, st.Tombstones, st.Compactions,
		fmt.Sprintf("%d/%d/%d", st.Cow.Shared, st.Cow.Patched, st.Cow.Appended))
	return tb.Render(os.Stdout)
}

func printInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	elems, err := circuit.ReadElements(f)
	if err != nil {
		return err
	}
	bounds := geom.EmptyAABB()
	neurons := make(map[int32]struct{})
	somas := 0
	for i := range elems {
		bounds = bounds.Union(elems[i].Bounds())
		neurons[elems[i].Neuron] = struct{}{}
		if elems[i].Branch < 0 {
			somas++
		}
	}
	fmt.Printf("%s: %s elements, %d neurons (%d somas), bounds %v\n",
		path, stats.Count(int64(len(elems))), len(neurons), somas, bounds)
	return nil
}
