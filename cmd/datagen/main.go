// Command datagen generates synthetic tissue circuits and serializes their
// element arrays to disk — the repository's stand-in for the Blue Brain
// Project's model-building pipeline (see the substitution table in
// DESIGN.md). The written files are consumed by anything that wants a
// reproducible dataset without regenerating morphologies.
//
// Usage:
//
//	go run ./cmd/datagen -out circuit.nsc [-neurons N] [-edge E] [-seed S] [-layered]
//	go run ./cmd/datagen -info circuit.nsc
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"neurospatial/internal/circuit"
	"neurospatial/internal/geom"
	"neurospatial/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	out := flag.String("out", "", "output path for the generated circuit")
	info := flag.String("info", "", "print a summary of an existing circuit file and exit")
	neurons := flag.Int("neurons", 128, "number of neurons")
	edge := flag.Float64("edge", 350, "cubic volume edge (µm)")
	seed := flag.Int64("seed", 1, "generator seed")
	layered := flag.Bool("layered", false, "use the cortical layer density profile")
	workers := flag.Int("workers", -1, "morphology generation workers (0 or 1: serial; negative: one per CPU)")
	flag.Parse()

	switch {
	case *info != "":
		if err := printInfo(*info); err != nil {
			log.Fatal(err)
		}
	case *out != "":
		if err := generate(*out, *neurons, *edge, *seed, *layered, *workers); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(path string, neurons int, edge float64, seed int64, layered bool, workers int) error {
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(edge, edge, edge))
	p.Seed = seed
	p.Workers = workers
	if layered {
		p.Layers = circuit.CorticalLayers()
	}
	c, err := circuit.Build(p)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := circuit.WriteElements(f, c.Elements); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d neurons, %s elements, %s on disk (density %.4f elems/µm³)\n",
		path, neurons, stats.Count(int64(len(c.Elements))), stats.Bytes(st.Size()), c.Density())
	return nil
}

func printInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	elems, err := circuit.ReadElements(f)
	if err != nil {
		return err
	}
	bounds := geom.EmptyAABB()
	neurons := make(map[int32]struct{})
	somas := 0
	for i := range elems {
		bounds = bounds.Union(elems[i].Bounds())
		neurons[elems[i].Neuron] = struct{}{}
		if elems[i].Branch < 0 {
			somas++
		}
	}
	fmt.Printf("%s: %s elements, %d neurons (%d somas), bounds %v\n",
		path, stats.Count(int64(len(elems))), len(neurons), somas, bounds)
	return nil
}
