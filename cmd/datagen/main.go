// Command datagen generates synthetic tissue circuits and serializes their
// element arrays to disk — the repository's stand-in for the Blue Brain
// Project's model-building pipeline (see the substitution table in
// DESIGN.md). The written files are consumed by anything that wants a
// reproducible dataset without regenerating morphologies.
//
// Usage:
//
//	go run ./cmd/datagen -out circuit.nsc [-neurons N] [-edge E] [-seed S] [-layered]
//	go run ./cmd/datagen -out circuit.nsc -churn 3   # also simulate 3 mutation
//	                                                 # batches on the generated
//	                                                 # dataset and report the
//	                                                 # maintenance cost
//	go run ./cmd/datagen -out circuit.ds -durable    # write a durable dataset
//	                                                 # directory instead: a
//	                                                 # checkpointed, crash-
//	                                                 # recoverable store that
//	                                                 # engine.OpenDataset serves
//	                                                 # without re-indexing
//	go run ./cmd/datagen -info circuit.nsc           # also accepts a durable
//	                                                 # dataset directory
//
// -info and -out are mutually exclusive, and -churn applies only with -out;
// with -durable, -churn commits its mutation batches through the write-ahead
// log before the final checkpoint, so the written dataset is the churned
// epoch, not the pristine one. Contradictory combinations are rejected with
// a one-line usage error instead of one flag silently winning.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"neurospatial/internal/circuit"
	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
	"neurospatial/internal/rtree"
	"neurospatial/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("datagen: ")
	out := flag.String("out", "", "output path for the generated circuit")
	info := flag.String("info", "", "print a summary of an existing circuit file and exit")
	neurons := flag.Int("neurons", 128, "number of neurons")
	edge := flag.Float64("edge", 350, "cubic volume edge (µm)")
	seed := flag.Int64("seed", 1, "generator seed")
	layered := flag.Bool("layered", false, "use the cortical layer density profile")
	workers := flag.Int("workers", -1, "morphology generation workers (0 or 1: serial; negative: one per CPU)")
	churn := flag.Int("churn", 0, "with -out: simulate this many mutation batches on the generated dataset and report the maintenance cost")
	durableOut := flag.Bool("durable", false, "with -out: write a durable dataset directory (reopenable with engine.OpenDataset) instead of an elements file")
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "datagen: %s\n", fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	if *info != "" && *out != "" {
		usageErr("-info and -out are mutually exclusive")
	}
	if *churn < 0 {
		usageErr("-churn needs a non-negative batch count (got %d)", *churn)
	}
	if *churn > 0 && *out == "" {
		usageErr("-churn applies only with -out (there is no dataset to mutate)")
	}
	if *durableOut && *out == "" {
		usageErr("-durable applies only with -out (it selects the output format)")
	}

	switch {
	case *info != "":
		if err := printInfo(*info); err != nil {
			log.Fatal(err)
		}
	case *out != "":
		gen := generate
		if *durableOut {
			gen = generateDurable
		}
		if err := gen(*out, *neurons, *edge, *seed, *layered, *workers, *churn); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func buildCircuit(neurons int, edge float64, seed int64, layered bool, workers int) (*circuit.Circuit, error) {
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(edge, edge, edge))
	p.Seed = seed
	p.Workers = workers
	if layered {
		p.Layers = circuit.CorticalLayers()
	}
	return circuit.Build(p)
}

func generate(path string, neurons int, edge float64, seed int64, layered bool, workers, churn int) error {
	c, err := buildCircuit(neurons, edge, seed, layered, workers)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := circuit.WriteElements(f, c.Elements); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d neurons, %s elements, %s on disk (density %.4f elems/µm³)\n",
		path, neurons, stats.Count(int64(len(c.Elements))), stats.Bytes(st.Size()), c.Density())
	if churn > 0 {
		return churnReport(c, seed, churn)
	}
	return nil
}

// churnReport simulates batched mutations against a Dataset built over the
// generated circuit and prints the maintenance cost — what keeping this
// dataset's indexes current would cost per update batch, without a full
// rebuild. The written file is the pristine epoch-0 circuit; the churn is a
// simulation on top of it.
func churnReport(c *circuit.Circuit, seed int64, batches int) error {
	items := make([]rtree.Item, len(c.Elements))
	for i := range c.Elements {
		items[i] = rtree.Item{Box: c.Elements[i].Bounds(), ID: c.Elements[i].ID}
	}
	ds, err := engine.NewDataset(items, engine.DatasetOptions{Contenders: []string{"flat"}})
	if err != nil {
		return err
	}
	if err := churnBatches(ds, c.Params.Volume, len(items), seed, batches); err != nil {
		return err
	}
	st := ds.Stats()
	tb := stats.NewTable(fmt.Sprintf("simulated churn: %d batches of 64 ops over the generated dataset", batches),
		"epoch", "live", "delta", "tombstones", "compactions", "layout shared/patched/appended")
	tb.AddRow(st.Epoch, st.Live, st.DeltaEntries, st.Tombstones, st.Compactions,
		fmt.Sprintf("%d/%d/%d", st.Cow.Shared, st.Cow.Patched, st.Cow.Appended))
	return tb.Render(os.Stdout)
}

// churnBatches commits the standard churn workload (64 half-insert
// half-delete ops per batch) against ds. When ds belongs to a durable
// dataset every commit goes through its write-ahead log.
func churnBatches(ds *engine.Dataset, vol geom.AABB, initial int, seed int64, batches int) error {
	rng := rand.New(rand.NewSource(seed))
	size := vol.Size()
	live := make([]int32, initial)
	for i := range live {
		live[i] = int32(i)
	}
	for b := 0; b < batches; b++ {
		tx := ds.Begin()
		for i := 0; i < 64; i++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				p := geom.V(
					vol.Min.X+rng.Float64()*size.X,
					vol.Min.Y+rng.Float64()*size.Y,
					vol.Min.Z+rng.Float64()*size.Z,
				)
				live = append(live, tx.Insert(geom.BoxAround(p, 1+rng.Float64()*4)))
			} else {
				j := rng.Intn(len(live))
				tx.Delete(live[j])
				live = append(live[:j], live[j+1:]...)
			}
		}
		if _, err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// generateDurable writes the generated circuit as a durable dataset
// directory: every contender built, checkpointed and fsynced, so
// engine.OpenDataset serves it without re-indexing. A churn count first
// commits that many batches through the WAL, so the written state is the
// churned epoch and the final checkpoint folds the delta into base pages.
func generateDurable(dir string, neurons int, edge float64, seed int64, layered bool, workers, churn int) error {
	c, err := buildCircuit(neurons, edge, seed, layered, workers)
	if err != nil {
		return err
	}
	items := make([]rtree.Item, len(c.Elements))
	for i := range c.Elements {
		items[i] = rtree.Item{Box: c.Elements[i].Bounds(), ID: c.Elements[i].ID}
	}
	dd, err := engine.CreateDataset(dir, items, engine.DatasetOptions{
		Contenders: []string{"flat", "rtree", "grid", "sharded"},
		Workers:    workers,
	})
	if err != nil {
		return err
	}
	if churn > 0 {
		if err := churnBatches(dd.Dataset, c.Params.Volume, len(items), seed, churn); err != nil {
			dd.Close()
			return err
		}
		if err := dd.Checkpoint(); err != nil {
			dd.Close()
			return err
		}
	}
	var bytes int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		dd.Close()
		return err
	}
	for _, ent := range ents {
		if info, err := ent.Info(); err == nil {
			bytes += info.Size()
		}
	}
	man := dd.Manifest()
	fmt.Printf("wrote durable dataset %s: %d neurons, %s elements, epoch %d, %s on disk (%s, %s, %s)\n",
		dir, neurons, stats.Count(int64(dd.Current().NumItems())), man.Epoch, stats.Bytes(bytes),
		man.Snapshot, man.Pages, man.WAL)
	return dd.Close()
}

func printInfo(path string) error {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		return printDatasetInfo(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	elems, err := circuit.ReadElements(f)
	if err != nil {
		return err
	}
	bounds := geom.EmptyAABB()
	neurons := make(map[int32]struct{})
	somas := 0
	for i := range elems {
		bounds = bounds.Union(elems[i].Bounds())
		neurons[elems[i].Neuron] = struct{}{}
		if elems[i].Branch < 0 {
			somas++
		}
	}
	fmt.Printf("%s: %s elements, %d neurons (%d somas), bounds %v\n",
		path, stats.Count(int64(len(elems))), len(neurons), somas, bounds)
	return nil
}

// printDatasetInfo summarizes a durable dataset directory: what OpenDataset
// recovered and what it cost on disk. Opening reads headers and the snapshot
// only — the item pages stay on disk, so -info on a huge dataset is cheap.
func printDatasetInfo(dir string) error {
	dd, err := engine.OpenDataset(dir)
	if err != nil {
		return err
	}
	defer dd.Close()
	var bytes int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		if info, err := ent.Info(); err == nil {
			bytes += info.Size()
		}
	}
	man := dd.Manifest()
	st := dd.Stats()
	fmt.Printf("%s: durable dataset, %s items live, epoch %d, %s on disk (%s, %s, %s), delta %d, tombstones %d\n",
		dir, stats.Count(int64(st.Live)), man.Epoch, stats.Bytes(bytes),
		man.Snapshot, man.Pages, man.WAL, st.DeltaEntries, st.Tombstones)
	return nil
}
