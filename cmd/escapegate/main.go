// Command escapegate is the escape-analysis gate of the hot-path contract:
// it parses the compiler's `-gcflags='-m -m'` diagnostics and fails when any
// function annotated //neurospatial:hotpath gains a heap escape that is not
// in the committed baseline.
//
// The static analyzer (internal/analysis/hotpath) rejects the allocation
// constructs it can see in the source; this gate covers the ones it cannot —
// escapes the compiler decides, which move with inlining budgets and
// toolchain versions. Baseline entries are keyed on (function, diagnostic
// message), never on line numbers, so unrelated edits that shift code do not
// churn the file; an entry's count is the number of identical escapes in that
// function, so duplicating an allocating statement is caught too.
//
// Usage:
//
//	escapegate [-baseline file] [-update] [packages...]
//
// Packages default to ./...; the baseline defaults to
// cmd/escapegate/baseline.txt under the module root. -update rewrites the
// baseline from the current build. Exit status: 0 clean, 1 new escapes,
// 2 operational error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// directive marks a function whose escapes this gate audits. Kept textually
// identical to internal/analysis/hotpath.Directive (this binary stays
// dependency-free so CI can build it before the analysis packages compile).
const directive = "//neurospatial:hotpath"

func main() {
	baselinePath := flag.String("baseline", "", "baseline file (default cmd/escapegate/baseline.txt under the module root)")
	update := flag.Bool("update", false, "rewrite the baseline from the current build instead of comparing")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	mod, err := moduleInfo()
	if err != nil {
		fatal(err)
	}
	if *baselinePath == "" {
		*baselinePath = filepath.Join(mod.Dir, "cmd", "escapegate", "baseline.txt")
	}

	spans, err := annotatedSpans(patterns)
	if err != nil {
		fatal(err)
	}
	if len(spans) == 0 {
		fatal(fmt.Errorf("no %s functions found under %s", directive, strings.Join(patterns, " ")))
	}

	current, err := collectEscapes(mod, patterns, spans)
	if err != nil {
		fatal(err)
	}

	if *update {
		if err := writeBaseline(*baselinePath, current); err != nil {
			fatal(err)
		}
		fmt.Printf("escapegate: baseline updated: %d entr%s across %d annotated function(s)\n",
			len(current), plural(len(current), "y", "ies"), countFuncs(spans))
		return
	}

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	bad := 0
	for _, k := range sortedKeys(current) {
		if current[k] > baseline[k] {
			fmt.Printf("escapegate: new heap escape (%d, baseline %d): %s\n", current[k], baseline[k], k)
			bad++
		}
	}
	for _, k := range sortedKeys(baseline) {
		if current[k] < baseline[k] {
			fmt.Printf("escapegate: note: escape gone from build (run -update to shrink the baseline): %s\n", k)
		}
	}
	if bad > 0 {
		fmt.Printf("escapegate: %d new escape(s) in annotated hot-path functions\n", bad)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "escapegate:", err)
	os.Exit(2)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// module identifies the enclosing module: its root directory anchors the
// compiler's relative diagnostic paths, its path scopes the -gcflags pattern.
type module struct {
	Path string
	Dir  string
}

func moduleInfo() (module, error) {
	out, err := runGo("list", "-m", "-json")
	if err != nil {
		return module{}, err
	}
	var m module
	if err := json.Unmarshal(out, &m); err != nil {
		return module{}, fmt.Errorf("decoding go list -m: %w", err)
	}
	return m, nil
}

// span is one annotated function: the module-root-relative file and the
// inclusive line range of its declaration.
type span struct {
	key        string // importpath.(recv).Name — the baseline identity
	file       string // module-root-relative path, forward slashes
	start, end int
}

func countFuncs(spans []span) int {
	seen := map[string]bool{}
	for _, s := range spans {
		seen[s.key] = true
	}
	return len(seen)
}

// annotatedSpans parses every listed package (syntax only — escape
// attribution needs positions, not types) and records the declaration span
// of each //neurospatial:hotpath function.
func annotatedSpans(patterns []string) ([]span, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles", "--"}, patterns...)
	out, err := runGo(args...)
	if err != nil {
		return nil, err
	}
	mod, err := moduleInfo()
	if err != nil {
		return nil, err
	}
	var spans []span
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var pkg struct {
			ImportPath string
			Dir        string
			GoFiles    []string
		}
		if err := dec.Decode(&pkg); err != nil {
			return nil, fmt.Errorf("decoding go list: %w", err)
		}
		fset := token.NewFileSet()
		for _, name := range pkg.GoFiles {
			path := filepath.Join(pkg.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(mod.Dir, path)
			if err != nil {
				return nil, err
			}
			rel = filepath.ToSlash(rel)
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !annotated(fn) {
					continue
				}
				spans = append(spans, span{
					key:   pkg.ImportPath + "." + funcName(fn),
					file:  rel,
					start: fset.Position(fn.Pos()).Line,
					end:   fset.Position(fn.End()).Line,
				})
			}
		}
	}
	return spans, nil
}

func annotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// funcName renders the receiver-qualified name, matching godoc convention:
// Do, (*Flat).Do, (Stats).Sub.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := typeText(fn.Recv.List[0].Type)
	return "(" + recv + ")." + fn.Name.Name
}

func typeText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeText(e.X)
	case *ast.IndexExpr:
		return typeText(e.X)
	case *ast.IndexListExpr:
		return typeText(e.X)
	default:
		return "?"
	}
}

// diagLine matches one compiler diagnostic: path:line:col: message.
var diagLine = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.+)$`)

// collectEscapes builds the listed packages with escape diagnostics enabled
// and returns the multiset of (annotated function, message) pairs. The build
// cache replays diagnostics for up-to-date packages, so repeated runs are
// cheap and deterministic.
func collectEscapes(mod module, patterns []string, spans []span) (map[string]int, error) {
	args := []string{"build", "-gcflags=" + mod.Path + "/...=-m -m"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = mod.Dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, buf.Bytes())
	}

	counts := map[string]int{}
	seen := map[string]bool{} // -m -m repeats each escape with a flow trailer
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := diagLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := strings.TrimSuffix(m[4], ":")
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		raw := m[1] + ":" + m[2] + ":" + m[3] + ": " + msg
		if seen[raw] {
			continue
		}
		seen[raw] = true
		file := filepath.ToSlash(m[1])
		for _, s := range spans {
			if s.file == file && s.start <= line && line <= s.end {
				counts[s.key+": "+msg]++
				break
			}
		}
	}
	return counts, sc.Err()
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// readBaseline loads "count<TAB>key" lines. A missing file is an error: the
// gate without a baseline silently passes everything, and CI must not.
func readBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w (run escapegate -update to create it)", err)
	}
	m := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		count, key, ok := strings.Cut(line, "\t")
		n, err := strconv.Atoi(count)
		if !ok || err != nil || n < 1 {
			return nil, fmt.Errorf("baseline %s:%d: malformed line %q", path, i+1, line)
		}
		m[key] = n
	}
	return m, nil
}

func writeBaseline(path string, m map[string]int) error {
	var b strings.Builder
	b.WriteString("# escapegate baseline: heap escapes currently accepted in //neurospatial:hotpath functions.\n")
	b.WriteString("# One entry per (function, compiler diagnostic); counts are identical escapes per function.\n")
	b.WriteString("# Regenerate with: go run ./cmd/escapegate -update\n")
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(&b, "%d\t%s\n", m[k], k)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func runGo(args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, errb.String())
	}
	return out.Bytes(), nil
}
