package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func TestDiagLineParsing(t *testing.T) {
	cases := []struct {
		line string
		file string
		msg  string
		ok   bool
	}{
		{"internal/engine/exec.go:12:7: leak escapes to heap", "internal/engine/exec.go", "leak escapes to heap", true},
		{"internal/engine/exec.go:12:7: moved to heap: st:", "internal/engine/exec.go", "moved to heap: st:", true},
		{"# neurospatial/internal/engine", "", "", false},
		{"internal/engine/exec.go:12: missing column", "", "", false},
	}
	for _, c := range cases {
		m := diagLine.FindStringSubmatch(c.line)
		if (m != nil) != c.ok {
			t.Errorf("diagLine(%q): matched=%v, want %v", c.line, m != nil, c.ok)
			continue
		}
		if m == nil {
			continue
		}
		if m[1] != c.file || m[4] != c.msg {
			t.Errorf("diagLine(%q) = (%q, %q), want (%q, %q)", c.line, m[1], m[4], c.file, c.msg)
		}
	}
}

func TestFuncNameAndAnnotated(t *testing.T) {
	const src = `package p

//neurospatial:hotpath
func Plain() {}

// doc first
//neurospatial:hotpath
func (f *Flat) Do() {}

// mentions //neurospatial:hotpath mid-line only
func NotAnnotated() {}

//neurospatial:hotpath
func (s Stats) Sub() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Plain": true, "(*Flat).Do": true, "(Stats).Sub": true}
	got := map[string]bool{}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if annotated(fn) {
			got[funcName(fn)] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("annotated functions = %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing annotated function %q", k)
		}
	}
}

func TestReadBaseline(t *testing.T) {
	dir := t.TempDir()

	good := filepath.Join(dir, "good.txt")
	os.WriteFile(good, []byte("# comment\n\n2\tpkg.F: x escapes to heap\n1\tpkg.G: moved to heap: y\n"), 0o644)
	m, err := readBaseline(good)
	if err != nil {
		t.Fatalf("readBaseline: %v", err)
	}
	if m["pkg.F: x escapes to heap"] != 2 || m["pkg.G: moved to heap: y"] != 1 {
		t.Errorf("readBaseline = %v", m)
	}

	for name, body := range map[string]string{
		"nocount.txt": "pkg.F: x escapes to heap\n",
		"zero.txt":    "0\tpkg.F: x escapes to heap\n",
		"nonnum.txt":  "two\tpkg.F: x escapes to heap\n",
	} {
		p := filepath.Join(dir, name)
		os.WriteFile(p, []byte(body), 0o644)
		if _, err := readBaseline(p); err == nil {
			t.Errorf("readBaseline(%s): want error on malformed line", name)
		}
	}

	if _, err := readBaseline(filepath.Join(dir, "absent.txt")); err == nil {
		t.Error("readBaseline: want error when the baseline file is missing")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.txt")
	in := map[string]int{
		"pkg.(*T).M: func literal escapes to heap": 3,
		"pkg.F: moved to heap: st":                 1,
	}
	if err := writeBaseline(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip = %v, want %v", out, in)
	}
	for k, v := range in {
		if out[k] != v {
			t.Errorf("round trip[%q] = %d, want %d", k, out[k], v)
		}
	}
}
