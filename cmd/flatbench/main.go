// Command flatbench drives experiments E1, E2 and E6: the FLAT range-query
// reproductions of Figures 2+3, Figure 4 and the §1 scaling narrative. It
// prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	go run ./cmd/flatbench            # E1: density sweep
//	go run ./cmd/flatbench -crawl     # E2: crawl cost vs result size
//	go run ./cmd/flatbench -scale     # E6: constant-density scaling
//	go run ./cmd/flatbench -batch     # E7: batched concurrent-query worker sweep
//	go run ./cmd/flatbench -all       # everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"neurospatial/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flatbench: ")
	crawl := flag.Bool("crawl", false, "run E2 (crawl cost)")
	scale := flag.Bool("scale", false, "run E6 (scaling)")
	batch := flag.Bool("batch", false, "run E7 (batched concurrent queries)")
	all := flag.Bool("all", false, "run every FLAT experiment")
	flag.Parse()

	runDensity := *all || (!*crawl && !*scale && !*batch)
	if runDensity {
		rows, err := experiments.RunE1(experiments.DefaultE1())
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E1Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *crawl {
		rows, err := experiments.RunE2(experiments.DefaultE2())
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E2Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *scale {
		rows, err := experiments.RunE6(experiments.DefaultE6())
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E6Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *batch {
		rows, err := experiments.RunE7(experiments.DefaultE7())
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E7Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
