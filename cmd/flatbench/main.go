// Command flatbench drives experiments E1, E2 and E6: the FLAT range-query
// reproductions of Figures 2+3, Figure 4 and the §1 scaling narrative. It
// prints the tables recorded in EXPERIMENTS.md. Every contender executes
// through the unified engine layer (internal/engine).
//
// Usage:
//
//	go run ./cmd/flatbench            # E1: density sweep
//	go run ./cmd/flatbench -crawl     # E2: crawl cost vs result size
//	go run ./cmd/flatbench -scale     # E6: constant-density scaling
//	go run ./cmd/flatbench -batch     # E7: batched concurrent-query worker sweep
//	go run ./cmd/flatbench -shards -1 # E8: sharded scatter-gather sweep + routing
//	go run ./cmd/flatbench -shards 4  # E8 pinned to one shard count
//	go run ./cmd/flatbench -shards 4 -index rtree  # E8 with R-tree sub-indexes
//	go run ./cmd/flatbench -mixed     # E9: mixed range/kNN/point/within workload
//	                                  # through the Session front door + routing
//	go run ./cmd/flatbench -churn     # E10: interleaved updates and queries
//	                                  # through the mutable Dataset (snapshot
//	                                  # isolation + worker invariance enforced)
//	go run ./cmd/flatbench -stream    # E11: streaming first page vs full drain
//	                                  # (early-stop + O(Limit) allocation proof)
//	go run ./cmd/flatbench -alloc     # E12: hot-path allocs/op per contender ×
//	                                  # kind × churn + plan-cache hit rate
//	                                  # (zero-alloc + ≥10× reduction enforced)
//	go run ./cmd/flatbench -reopen    # E13: cold OpenDataset vs full re-index
//	                                  # + first-query latency through the cold
//	                                  # disk store (zero reads through open)
//	go run ./cmd/flatbench -all       # everything
//
//	go run ./cmd/flatbench -kind knn -k 8       # one-off Session demo: a handful
//	go run ./cmd/flatbench -kind within -radius 20  # of requests of that kind,
//	                                  # planner-routed, with per-request stats
//	go run ./cmd/flatbench -kind range -limit 16    # paging demo: walk the kind's
//	                                  # result in cursor pages of 16
//	go run ./cmd/flatbench -kind range -limit 16 -cursor nsc1:...
//	                                  # resume the walk from a printed cursor
//
//	go run ./cmd/flatbench -json BENCH_engine.json [-quick]
//	                                  # machine-readable E1/E4/E7/E8/E9/E10/
//	                                  # E11/E12/E13 headline numbers (the CI
//	                                  # artifact, schema 7)
//
// Contradictory flag combinations (-k without -kind knn, -radius with a
// kind that has no radius, -limit without -kind, -cursor without -limit,
// -index without -shards, -quick without -json) are rejected with a one-line
// usage error instead of being silently ignored.
//
// The -workers flag follows the repository-wide convention (see README):
// 0 or 1 run serially, values > 1 use that many workers, negative values
// use one worker per CPU. It controls circuit construction; results are
// worker-count-invariant.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"neurospatial/internal/experiments"
	"neurospatial/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flatbench: ")
	crawl := flag.Bool("crawl", false, "run E2 (crawl cost)")
	scale := flag.Bool("scale", false, "run E6 (scaling)")
	batch := flag.Bool("batch", false, "run E7 (batched concurrent queries)")
	shards := flag.Int("shards", 0, "run E8 (sharded scatter-gather): > 0 pins the shard count, -1 runs the default sweep")
	index := flag.String("index", "", "with -shards: the E8 per-shard contender (flat, rtree, grid)")
	mixed := flag.Bool("mixed", false, "run E9 (mixed range/kNN/point/within workload through the Session front door)")
	churn := flag.Bool("churn", false, "run E10 (interleaved updates and queries through the mutable Dataset)")
	stream := flag.Bool("stream", false, "run E11 (streaming first page vs full drain)")
	alloc := flag.Bool("alloc", false, "run E12 (hot-path allocations per op + plan-cache hit rate)")
	reopen := flag.Bool("reopen", false, "run E13 (cold OpenDataset vs full re-index through the durable store)")
	all := flag.Bool("all", false, "run every FLAT experiment")
	workers := flag.Int("workers", -1, "circuit-construction workers (0 or 1: serial; negative: one per CPU)")
	jsonOut := flag.String("json", "", "write E1/E4/E7/E8/E9/E10/E11/E12 headline numbers as JSON to this path and exit")
	quick := flag.Bool("quick", false, "with -json: use the reduced CI-scale configurations")
	kind := flag.String("kind", "", "run a one-off Session demo of this query kind (range, knn, point, within) and exit")
	k := flag.Int("k", 8, "with -kind knn: the neighbor count")
	radius := flag.Float64("radius", 20, "with -kind range/within: the query radius")
	limit := flag.Int("limit", 0, "with -kind: page the demo's result in cursor pages of this size")
	cursor := flag.String("cursor", "", "with -kind and -limit: resume the page walk from this cursor token")
	flag.Parse()

	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "flatbench: %s\n", fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	if set["k"] && *kind != "knn" {
		usageErr("-k applies only to -kind knn (got -kind %q)", *kind)
	}
	if set["radius"] && *kind != "range" && *kind != "within" {
		usageErr("-radius applies only to -kind range or within (got -kind %q)", *kind)
	}
	if set["quick"] && *jsonOut == "" {
		usageErr("-quick applies only with -json")
	}
	if set["index"] && *shards == 0 {
		usageErr("-index selects the E8 per-shard contender; pass -shards too")
	}
	if set["index"] && *index != "flat" && *index != "rtree" && *index != "grid" {
		usageErr("-index must be flat, rtree or grid (got %q)", *index)
	}
	if set["limit"] && *kind == "" {
		usageErr("-limit pages the -kind demo; pass -kind too")
	}
	if set["cursor"] && !set["limit"] {
		usageErr("-cursor resumes a -limit page walk; pass -kind and -limit too")
	}

	if *jsonOut != "" {
		if err := writeBenchJSON(*jsonOut, *quick, *workers); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *kind != "" {
		var tb *stats.Table
		var err error
		if *limit > 0 {
			tb, err = experiments.RunPagingDemo(*kind, *k, *radius, *limit, *cursor, *workers)
		} else {
			tb, err = experiments.RunSessionDemo(*kind, *k, *radius, *workers)
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := tb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	runDensity := *all || (!*crawl && !*scale && !*batch && !*mixed && !*churn && !*stream && !*alloc && !*reopen && *shards == 0)
	if runDensity {
		cfg := experiments.DefaultE1()
		cfg.Workers = *workers
		rows, err := experiments.RunE1(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E1Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *crawl {
		cfg := experiments.DefaultE2()
		cfg.Workers = *workers
		rows, err := experiments.RunE2(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E2Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *scale {
		cfg := experiments.DefaultE6()
		cfg.Workers = *workers
		rows, err := experiments.RunE6(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E6Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *batch {
		cfg := experiments.DefaultE7()
		cfg.Workers = *workers
		rows, err := experiments.RunE7(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E7Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *shards != 0 {
		cfg := experiments.DefaultE8()
		cfg.Workers = *workers
		if *shards > 0 {
			cfg.ShardCounts = []int{*shards}
		}
		if *index != "" {
			cfg.Index = *index
		}
		res, err := experiments.RunE8(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E8Table(res.Rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := experiments.E8RoutingTable(res).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *mixed {
		cfg := experiments.DefaultE9()
		cfg.Workers = *workers
		res, err := experiments.RunE9(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E9Table(res.Rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := experiments.E9KindTable(res).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := experiments.E9RoutingTable(res).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *churn {
		cfg := experiments.DefaultE10()
		cfg.Workers = *workers
		res, err := experiments.RunE10(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E10Table(res.Rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := experiments.E10RoutingTable(res).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *stream {
		rows, err := experiments.RunE11(experiments.DefaultE11())
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E11Table(rows).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *alloc {
		res, err := experiments.RunE12(experiments.DefaultE12())
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E12Table(res).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		if err := experiments.E12Summary(res).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if *all || *reopen {
		res, err := experiments.RunE13(experiments.DefaultE13())
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.E13Table(res).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func writeBenchJSON(path string, quick bool, workers int) error {
	cfgs := experiments.DefaultBenchConfigs()
	if quick {
		cfgs = experiments.QuickBenchConfigs()
	}
	cfgs.E1.Workers = workers
	cfgs.E4.Workers = workers
	cfgs.E7.Workers = workers
	cfgs.E8.Workers = workers
	cfgs.E9.Workers = workers
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiments.RunBenchJSON(f, cfgs); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
