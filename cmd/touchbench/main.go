// Command touchbench drives experiment E5: the TOUCH reproduction of
// Figure 7 and the §4.1 performance claims — the synapse-placement join run
// with every method, reporting time, memory footprint and pairwise
// comparisons. It prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	go run ./cmd/touchbench                 # E5 at the default scale
//	go run ./cmd/touchbench -neurons 256    # bigger model
//	go run ./cmd/touchbench -skip-nl        # skip the quadratic baseline
//	go run ./cmd/touchbench -eps-sweep      # TOUCH vs PBSM across ε
//	go run ./cmd/touchbench -workers -1     # add parallel PBSM/S3/TOUCH rows
//	go run ./cmd/touchbench -churn 3        # mutable-dataset demo (3 mutation
//	                                        # batches + maintenance panel) and
//	                                        # exit
//
// Malformed flag values (-neurons <= 0, -churn <= 0) are rejected with a
// one-line usage error instead of being silently ignored.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"neurospatial/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("touchbench: ")
	neurons := flag.Int("neurons", 0, "override the model size")
	skipNL := flag.Bool("skip-nl", false, "skip the quadratic NestedLoop baseline")
	epsSweep := flag.Bool("eps-sweep", false, "also run the ε sensitivity sweep")
	workers := flag.Int("workers", 0, "also run parallel PBSM/S3/TOUCH with this many workers (negative: one per CPU)")
	churn := flag.Int("churn", 0, "run the mutable-dataset demo with this many mutation batches and exit")
	flag.Parse()

	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "touchbench: %s\n", fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	if set["neurons"] && *neurons <= 0 {
		usageErr("-neurons needs a positive model size (got %d)", *neurons)
	}
	if set["churn"] && *churn <= 0 {
		usageErr("-churn needs a positive batch count (got %d)", *churn)
	}
	if *churn > 0 {
		tables, err := experiments.RunChurnDemo(*churn, *workers)
		if err != nil {
			log.Fatal(err)
		}
		for _, tb := range tables {
			if err := tb.Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
			fmt.Println()
		}
		return
	}

	cfg := experiments.DefaultE5()
	if *neurons > 0 {
		cfg.Neurons = *neurons
	}
	if *skipNL {
		cfg.IncludeNestedLoop = false
	}
	cfg.Workers = *workers
	rows, err := experiments.RunE5(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := experiments.E5Table(rows).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *epsSweep {
		fmt.Println()
		tb, err := experiments.E5EpsSweep(cfg, []float64{0.5, 1, 2, 4})
		if err != nil {
			log.Fatal(err)
		}
		if err := tb.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
