// Command benchgate compares two BENCH_engine.json reports and fails loudly
// when a deterministic headline count regresses. It is the CI trend gate: the
// bench-report job restores the previous run's artifact, regenerates the
// report, and benchgate refuses >20% growth in any page-read/result metric.
//
// Usage:
//
//	go run ./cmd/benchgate -old prev/BENCH_engine.json -new BENCH_engine.json
//	go run ./cmd/benchgate -old prev.json -new cur.json -threshold 0.1
//
// Only metrics whose names contain "pages", "reads", "results", "allocs" or
// "probes" are gated: those are deterministic counts under the fixed
// experiment seeds, so growth is a real read-path, allocation or plan-probing
// regression, not noise. Wall-clock and speedup metrics — and the "alloc_est"
// cells, whose counts carry scheduling and pool-refill noise — are reported
// but never gated; they move with the runner hardware. A missing -old file
// passes with a notice (the first run has no baseline); a missing -new file
// is an error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strings"
)

// report mirrors the BENCH_engine.json layout (experiments.BenchReport);
// decoded structurally so benchgate works across schema versions.
type report struct {
	Schema    int `json:"schema"`
	Headlines []struct {
		Experiment string             `json:"experiment"`
		Metrics    map[string]float64 `json:"metrics"`
	} `json:"headlines"`
}

func readReport(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	if err := validate(r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// validate rejects reports the gate cannot trust. A malformed report must
// fail loudly: comparing against an empty or half-parsed baseline silently
// gates nothing, which reads as "no regressions" when the truth is "no data".
func validate(r report) error {
	if r.Schema <= 0 {
		return fmt.Errorf("missing or invalid schema field (got %d): not a BENCH_engine.json report", r.Schema)
	}
	if len(r.Headlines) == 0 {
		return fmt.Errorf("report has no headlines: refusing to gate against empty data")
	}
	for _, h := range r.Headlines {
		if h.Experiment == "" {
			return fmt.Errorf("headline with empty experiment name")
		}
		if len(h.Metrics) == 0 {
			return fmt.Errorf("headline %s has no metrics", h.Experiment)
		}
		for name, v := range h.Metrics {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("metric %s.%s is %g: non-finite values cannot be gated", h.Experiment, name, v)
			}
		}
	}
	return nil
}

// gated reports whether a metric is a deterministic count the gate enforces.
func gated(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "pages") || strings.Contains(n, "reads") || strings.Contains(n, "result") ||
		strings.Contains(n, "allocs") || strings.Contains(n, "probes")
}

func (r report) metrics() map[string]float64 {
	out := make(map[string]float64)
	for _, h := range r.Headlines {
		for name, v := range h.Metrics {
			out[h.Experiment+"."+name] = v
		}
	}
	return out
}

// compare diffs the gated metrics of two reports. failures are >threshold
// relative increases; notes record decreases and disappeared metrics (worth a
// look, never blocking — a config change or a genuine optimisation).
func compare(oldR, newR report, threshold float64) (failures, notes []string) {
	oldM, newM := oldR.metrics(), newR.metrics()
	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !gated(k) {
			continue
		}
		ov := oldM[k]
		nv, ok := newM[k]
		if !ok {
			notes = append(notes, fmt.Sprintf("metric %s disappeared (was %g)", k, ov))
			continue
		}
		if ov == 0 {
			if nv != 0 {
				notes = append(notes, fmt.Sprintf("metric %s appeared at %g (baseline 0)", k, nv))
			}
			continue
		}
		rel := (nv - ov) / ov
		switch {
		case rel > threshold:
			failures = append(failures, fmt.Sprintf("%s regressed %.1f%%: %g -> %g", k, rel*100, ov, nv))
		case rel < -threshold:
			notes = append(notes, fmt.Sprintf("%s improved %.1f%%: %g -> %g (verify it is intentional)", k, -rel*100, ov, nv))
		}
	}
	return failures, notes
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	oldPath := flag.String("old", "", "previous BENCH_engine.json (missing file: pass with a notice)")
	newPath := flag.String("new", "", "current BENCH_engine.json")
	threshold := flag.Float64("threshold", 0.20, "maximum tolerated relative growth of a gated metric")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		log.Fatal("both -old and -new are required")
	}

	newR, err := readReport(*newPath)
	if err != nil {
		log.Fatal(err)
	}
	oldR, err := readReport(*oldPath)
	if os.IsNotExist(err) {
		fmt.Printf("benchgate: no baseline at %s — first run, passing\n", *oldPath)
		return
	}
	if err != nil {
		log.Fatal(err)
	}

	failures, notes := compare(oldR, newR, *threshold)
	for _, n := range notes {
		fmt.Printf("benchgate: note: %s\n", n)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d gated metrics within %.0f%% of baseline (schema %d -> %d)\n",
		len(gatedCount(oldR)), *threshold*100, oldR.Schema, newR.Schema)
}

func gatedCount(r report) []string {
	var out []string
	for k := range r.metrics() {
		if gated(k) {
			out = append(out, k)
		}
	}
	return out
}
