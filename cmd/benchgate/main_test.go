package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkReport(metrics map[string]float64) report {
	var r report
	r.Schema = 5
	r.Headlines = append(r.Headlines, struct {
		Experiment string             `json:"experiment"`
		Metrics    map[string]float64 `json:"metrics"`
	}{Experiment: "E1", Metrics: metrics})
	return r
}

func TestCompareGatesCountRegressions(t *testing.T) {
	oldR := mkReport(map[string]float64{
		"densest_flat_pages": 100,
		"total_results":      5000,
		"flat_time_ms":       10,
		"speedup":            3.2,
	})

	// Within threshold: pass, no notes.
	newR := mkReport(map[string]float64{
		"densest_flat_pages": 110,
		"total_results":      5000,
		"flat_time_ms":       400, // time is never gated
		"speedup":            0.1, // neither is speedup
	})
	failures, notes := compare(oldR, newR, 0.20)
	if len(failures) != 0 || len(notes) != 0 {
		t.Fatalf("within-threshold diff reported failures %v notes %v", failures, notes)
	}

	// Pages regressing past the threshold: fail, naming the metric.
	newR = mkReport(map[string]float64{
		"densest_flat_pages": 130,
		"total_results":      5000,
	})
	failures, _ = compare(oldR, newR, 0.20)
	if len(failures) != 1 || !strings.Contains(failures[0], "densest_flat_pages") {
		t.Fatalf("30%% pages growth not gated: %v", failures)
	}

	// Result-count collapse: a note (suspicious, not blocking).
	newR = mkReport(map[string]float64{
		"densest_flat_pages": 100,
		"total_results":      100,
	})
	failures, notes = compare(oldR, newR, 0.20)
	if len(failures) != 0 {
		t.Fatalf("improvement treated as regression: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "total_results") {
		t.Fatalf("98%% result drop not noted: %v", notes)
	}

	// Disappeared gated metric: noted.
	newR = mkReport(map[string]float64{"total_results": 5000})
	_, notes = compare(oldR, newR, 0.20)
	if len(notes) != 1 || !strings.Contains(notes[0], "disappeared") {
		t.Fatalf("missing metric not noted: %v", notes)
	}
}

func TestGatedSelectsDeterministicCounts(t *testing.T) {
	for name, want := range map[string]bool{
		"densest_flat_pages":      true,
		"total_pages_read":        true,
		"densest_rtree_str_reads": true,
		"flat_limit_pages":        true,
		"result_size":             true,
		"flat_time_ms":            false,
		"speedup":                 false,
		"flat_full_alloc_mb":      false,
		"range_routed_flat":       false,
		// Schema 6 (E12): per-op allocation counts and plan probes are
		// deterministic under warm pools; the noisy scatter/overlay cells are
		// published as "alloc_est" precisely so they stay ungated.
		"flat_range_allocs":          true,
		"unpooled_flat_range_allocs": true,
		"plan_probes_run":            true,
		"sharded_range_alloc_est":    false,
		"grid_knn_churn_alloc_est":   false,
		"flat_range_ns":              false,
		"plan_cache_hit_rate":        false,
		// Schema 7 (E13): page-fault counts through the reopened disk store
		// are deterministic under the fixed seed — open_page_reads is pinned
		// at zero (the no-rescan witness), cold faults must not grow. The
		// open/re-index timings and their ratio move with the runner.
		"open_page_reads":     true,
		"flat_cold_pages":     true,
		"sharded_warm_pages":  true,
		"rtree_segment_pages": true,
		"open_ms":             false,
		"reindex_ms":          false,
		"open_speedup_x":      false,
		"disk_mb":             false,
		"grid_cold_query_ms":  false,
	} {
		if gated(name) != want {
			t.Errorf("gated(%q) = %v, want %v", name, !want, want)
		}
	}
}

// TestValidateRejectsMalformedReports: a report the gate cannot trust must
// fail loudly — gating against empty or half-parsed data silently passes
// everything.
func TestValidateRejectsMalformedReports(t *testing.T) {
	if err := validate(mkReport(map[string]float64{"total_pages_read": 42})); err != nil {
		t.Fatalf("well-formed report rejected: %v", err)
	}

	missingSchema := mkReport(map[string]float64{"total_pages_read": 42})
	missingSchema.Schema = 0
	if err := validate(missingSchema); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("missing schema field accepted (err = %v)", err)
	}

	var empty report
	empty.Schema = 5
	if err := validate(empty); err == nil || !strings.Contains(err.Error(), "no headlines") {
		t.Errorf("empty report accepted (err = %v)", err)
	}

	for name, v := range map[string]float64{
		"NaN":  math.NaN(),
		"+Inf": math.Inf(1),
		"-Inf": math.Inf(-1),
	} {
		bad := mkReport(map[string]float64{"total_pages_read": v})
		if err := validate(bad); err == nil || !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("%s metric accepted (err = %v)", name, err)
		}
	}

	noMetrics := mkReport(nil)
	if err := validate(noMetrics); err == nil || !strings.Contains(err.Error(), "no metrics") {
		t.Errorf("metric-less headline accepted (err = %v)", err)
	}

	anon := mkReport(map[string]float64{"total_pages_read": 1})
	anon.Headlines[0].Experiment = ""
	if err := validate(anon); err == nil || !strings.Contains(err.Error(), "experiment") {
		t.Errorf("unnamed headline accepted (err = %v)", err)
	}
}

// TestReadReportFailsLoudly pins the file-level failure modes: truncated
// JSON, out-of-range numbers, and structurally empty baselines are errors,
// not empty reports that would gate nothing.
func TestReadReportFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("good.json",
		`{"schema":6,"headlines":[{"experiment":"E12","metrics":{"flat_range_allocs":0}}]}`)
	if _, err := readReport(good); err != nil {
		t.Fatalf("well-formed file rejected: %v", err)
	}
	schema7 := write("schema7.json",
		`{"schema":7,"headlines":[{"experiment":"E13","metrics":{"open_page_reads":0,"flat_cold_pages":3}}]}`)
	if _, err := readReport(schema7); err != nil {
		t.Fatalf("schema-7 report rejected: %v", err)
	}

	for name, body := range map[string]string{
		"truncated.json": `{"schema":6,"headlines":[{"experiment":"E1"`,
		"overflow.json":  `{"schema":6,"headlines":[{"experiment":"E1","metrics":{"total_pages_read":1e999}}]}`,
		"empty.json":     `{}`,
		"noschema.json":  `{"headlines":[{"experiment":"E1","metrics":{"total_pages_read":1}}]}`,
	} {
		if _, err := readReport(write(name, body)); err == nil {
			t.Errorf("%s accepted; want a loud failure", name)
		}
	}

	if _, err := readReport(filepath.Join(dir, "absent.json")); !os.IsNotExist(err) {
		t.Errorf("missing file error = %v, want IsNotExist (main treats a missing baseline as first run)", err)
	}
}
