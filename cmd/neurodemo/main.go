// Command neurodemo is the terminal rendition of the SIGMOD'13 demonstration
// itself: three "stations", one per technique, with ASCII visualizations
// standing in for the tool's 3-D views (per the substitution table in
// DESIGN.md).
//
//	Station 1 (§2.2, Figures 2-4): a range query is placed on the model;
//	FLAT and the R-tree execute it side by side; FLAT's crawl order is
//	rendered by labeling each page with the order it was retrieved.
//
//	Station 2 (§3.2, Figure 6): a walkthrough follows a neuron branch; the
//	positions visited are drawn, and the prefetching statistics panel is
//	printed for every method.
//
//	Station 3 (§4.2, Figure 7): the synapse join runs and the discovered
//	synapse locations are highlighted on the model projection.
//
// Usage:
//
//	go run ./cmd/neurodemo [-neurons N] [-station 1|2|3] [-workers W]
//	                       [-kind range|knn|point|within] [-k K] [-radius R]
//	                       [-churn B]
//
// Station 1 ends with the engine's Session front door: the query the -kind
// flag selects (default knn) runs planner-routed through engine.Session and
// its per-request statistics are printed — the "one front door, any query
// kind" face of the unified engine. With -churn B, station 1 additionally
// demonstrates the mutable Dataset lifecycle: B batched mutations are
// committed while a pre-churn session stays pinned to its epoch, and the
// pinned-vs-current answers are printed side by side (snapshot isolation,
// live).
//
// Contradictory flag combinations (-k without -kind knn, -radius with a
// kind that has no radius, -station outside 1..3) are rejected with a
// one-line usage error instead of being silently ignored.
//
// The -workers flag follows the repository-wide convention (see README):
// 0 or 1 run serially, values > 1 use that many workers, negative values
// use one worker per CPU. It controls circuit construction; the model is
// worker-count-invariant.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/stats"
	"neurospatial/internal/viz"
)

const canvasW, canvasH = 72, 30

func main() {
	log.SetFlags(0)
	log.SetPrefix("neurodemo: ")
	neurons := flag.Int("neurons", 48, "neurons in the model")
	station := flag.Int("station", 0, "run a single station (1, 2 or 3); 0 runs all")
	workers := flag.Int("workers", -1, "circuit-construction workers (0 or 1: serial; negative: one per CPU)")
	kindName := flag.String("kind", "knn", "query kind of station 1's Session showcase (range, knn, point, within)")
	k := flag.Int("k", 8, "with -kind knn: the neighbor count")
	radius := flag.Float64("radius", 20, "with -kind range/within: the query radius")
	churn := flag.Int("churn", 0, "station 1: also demo the mutable Dataset with this many mutation batches")
	flag.Parse()

	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "neurodemo: %s\n", fmt.Sprintf(format, args...))
		os.Exit(2)
	}
	if set["k"] && *kindName != "knn" {
		usageErr("-k applies only to -kind knn (got -kind %q)", *kindName)
	}
	if set["radius"] && *kindName != "range" && *kindName != "within" {
		usageErr("-radius applies only to -kind range or within (got -kind %q)", *kindName)
	}
	if set["station"] && (*station < 0 || *station > 3) {
		usageErr("-station must be 1, 2 or 3 (0 runs all; got %d)", *station)
	}
	if set["churn"] && *churn <= 0 {
		usageErr("-churn needs a positive batch count (got %d)", *churn)
	}

	p := circuit.DefaultParams()
	p.Neurons = *neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(300, 300, 300))
	p.Workers = *workers
	p.Layers = circuit.CorticalLayers()
	model, err := core.BuildModel(p, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== neurodemo: %d neurons, %d segments, cortical layer profile ===\n\n",
		*neurons, len(model.Circuit.Elements))

	if *station == 0 || *station == 1 {
		station1(model, *kindName, *k, *radius)
		if *churn > 0 {
			station1Churn(model, *churn)
		}
	}
	if *station == 0 || *station == 2 {
		station2(model)
	}
	if *station == 0 || *station == 3 {
		station3(model)
	}
}

// drawModel paints every element's center, giving the audience the model
// overview of Figure 2 (XY projection; Y is the cortical depth axis, so the
// layer density contrast is visible).
func drawModel(model *core.Model, ch byte) *viz.Canvas {
	c, err := viz.NewCanvas(canvasW, canvasH, model.Circuit.Bounds)
	if err != nil {
		log.Fatal(err)
	}
	for i := range model.Circuit.Elements {
		c.Plot(model.Circuit.Elements[i].Shape.Center(), ch)
	}
	return c
}

func station1(model *core.Model, kindName string, k int, radius float64) {
	fmt.Println("--- station 1: efficient spatial data querying (FLAT, §2) ---")
	q := geom.BoxAround(model.Circuit.Params.Volume.Center(), 45)

	c := drawModel(model, '.')
	c.Box(q, '#')
	fmt.Println(c.String())
	fmt.Println("model projection (dots: neuron segments; #: the selected range query)")

	cmp := model.CompareRangeQuery(q)
	tb := stats.NewTable("live statistics (Figure 3)", "method", "pages read", "per level (leaf..root)", "time")
	tb.AddRow("FLAT", cmp.FlatStats.TotalReads(), "-", stats.Dur(cmp.FlatTime))
	tb.AddRow("R-Tree", cmp.RTreeStats.TotalReads(),
		fmt.Sprintf("%v", cmp.RTreeStats.NodesPerLevel()), stats.Dur(cmp.RTreeTime))
	tb.Render(os.Stdout)
	fmt.Printf("both retrieved %d elements\n", cmp.Results)

	// The session's planner routes a batch of such queries to the cheapest
	// contender after calibrating each one on a small sample.
	batch := []engine.Request{
		engine.RangeRequest(q),
		engine.RangeRequest(q.Expand(-10)),
		engine.RangeRequest(q.Expand(10)),
	}
	if _, err := model.DoBatch(context.Background(), batch, 1); err != nil {
		log.Fatal(err)
	}
	decision := model.Session().Planner().PlanKind(engine.Range, nil)
	fmt.Printf("engine planner: %s\n\n", decision)

	// Figure 4: the crawl order, each page labeled by retrieval order.
	crawl := model.Flat.QueryTraced(q, nil, func(int32) {})
	c2, err := viz.NewCanvas(canvasW, canvasH, q.Expand(15))
	if err != nil {
		log.Fatal(err)
	}
	c2.Box(q, '#')
	for i, page := range crawl.CrawlOrder {
		c2.FillBox(model.Flat.PageBox(page).Intersect(q), viz.CrawlGlyph(i))
	}
	fmt.Println(c2.String())
	fmt.Printf("FLAT's crawl order (Figure 4): %d pages, labeled 0-9a-z in retrieval order;\n"+
		"the crawl spreads outward from the seed page through neighborhood links\n\n",
		len(crawl.CrawlOrder))

	// The Session front door: the same model serves any query kind through
	// one typed Request surface, planner-routed per kind.
	kind, err := engine.ParseKind(kindName)
	if err != nil {
		log.Fatal(err)
	}
	center := model.Circuit.Params.Volume.Center()
	var req engine.Request
	switch kind {
	case engine.Range:
		req = engine.RangeRequest(geom.BoxAround(center, radius))
	case engine.KNN:
		req = engine.KNNRequest(center, k)
	case engine.Point:
		req = engine.PointRequest(center)
	case engine.WithinDistance:
		req = engine.WithinDistanceRequest(center, radius)
	}
	res, err := model.Do(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	tb2 := stats.NewTable("session front door: one typed request, any kind, planner-routed",
		"request", "routed to", "results", "pages", "index reads", "entries tested")
	tb2.AddRow(res.Request.String(), res.Index, res.Stats.Results, res.Stats.PagesRead,
		res.Stats.IndexReads, res.Stats.EntriesTested)
	tb2.Render(os.Stdout)
	if kind == engine.KNN && len(res.Hits) > 0 {
		fmt.Printf("nearest element %d at distance %.2f µm of the volume center\n",
			res.Hits[0].ID, math.Sqrt(res.Hits[0].Dist2))
	}
	fmt.Println()
}

// station1Churn demonstrates the mutable Dataset lifecycle: batched
// mutations commit new snapshot epochs while a pre-churn session stays
// pinned — the audience sees the pinned and current answers diverge as the
// "tissue keeps growing".
func station1Churn(model *core.Model, batches int) {
	fmt.Println("--- station 1b: the model keeps growing (mutable Dataset) ---")
	ctx := context.Background()
	center := model.Circuit.Params.Volume.Center()
	req := engine.WithinDistanceRequest(center, 30)

	pinned, err := model.OpenSession()
	if err != nil {
		log.Fatal(err)
	}
	defer pinned.Close()
	before, err := pinned.Do(ctx, req)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	vol := model.Circuit.Params.Volume
	size := vol.Size()
	for b := 0; b < batches; b++ {
		if _, err := model.Mutate(func(tx *engine.Tx) error {
			for i := 0; i < 16; i++ {
				p := geom.V(
					vol.Min.X+rng.Float64()*size.X,
					vol.Min.Y+rng.Float64()*size.Y,
					vol.Min.Z+rng.Float64()*size.Z,
				)
				tx.Insert(geom.BoxAround(p, 1+rng.Float64()*3))
			}
			tx.Delete(int32(b)) // retire one original element per batch
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}
	after, err := model.Do(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	again, err := pinned.Do(ctx, req)
	if err != nil {
		log.Fatal(err)
	}

	st := model.Dataset.Stats()
	tb := stats.NewTable(fmt.Sprintf("dataset after %d commits (epoch %d)", st.Commits, st.Epoch),
		"live", "delta", "tombstones", "layout shared/patched/appended")
	tb.AddRow(st.Live, st.DeltaEntries, st.Tombstones,
		fmt.Sprintf("%d/%d/%d", st.Cow.Shared, st.Cow.Patched, st.Cow.Appended))
	tb.Render(os.Stdout)

	tb2 := stats.NewTable("snapshot isolation, live: the same query, two epochs",
		"session", "epoch", "results", "delta tested", "tombs filtered")
	tb2.AddRow("pinned pre-churn", pinned.Snapshot().Epoch(), len(again.Hits),
		again.Stats.DeltaEntries, again.Stats.Tombstones)
	tb2.AddRow("current", model.Session().Snapshot().Epoch(), len(after.Hits),
		after.Stats.DeltaEntries, after.Stats.Tombstones)
	tb2.Render(os.Stdout)
	if len(again.Hits) != len(before.Hits) {
		log.Fatalf("pinned session drifted: %d hits, had %d", len(again.Hits), len(before.Hits))
	}
	fmt.Printf("the pinned session replayed its epoch exactly (%d hits) while %d commits landed\n\n",
		len(before.Hits), st.Commits)
}

func station2(model *core.Model) {
	fmt.Println("--- station 2: efficient data exploration (SCOUT, §3) ---")
	neuron, branch, path := model.Circuit.LongestPath()

	c := drawModel(model, '.')
	for _, pt := range path {
		c.Plot(pt, '@')
	}
	fmt.Println(c.String())
	fmt.Printf("walk-through trajectory (@): neuron %d, branch %d, %.0f µm\n\n",
		neuron, branch, pathLen(path))

	cfg := core.ExploreConfig{ThinkTime: 500 * time.Millisecond}
	tb := stats.NewTable("prefetching statistics (Figure 6)",
		"method", "stall", "speedup", "prefetched", "correct", "accuracy")
	var base time.Duration
	for _, pf := range model.Prefetchers() {
		run, err := model.Explore(neuron, branch, pf, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if pf.Name() == "none" {
			base = run.Latency
		}
		tb.AddRow(pf.Name(), stats.Dur(run.Latency), stats.Speedup(base, run.Latency),
			run.PrefetchReads, run.PrefetchHits, stats.Ratio(run.PrefetchHits, run.PrefetchReads))
	}
	tb.Render(os.Stdout)
	fmt.Println()
}

func station3(model *core.Model) {
	fmt.Println("--- station 3: efficient data discovery (TOUCH, §4) ---")
	region := model.Circuit.Bounds
	alg, err := model.JoinByName("TOUCH")
	if err != nil {
		log.Fatal(err)
	}
	synapses, st := model.FindSynapses(region, 2.0, alg)

	c := drawModel(model, '.')
	for _, s := range synapses {
		c.Plot(s.Location, 'O')
	}
	fmt.Println(c.String())
	fmt.Printf("synapse locations highlighted (O, Figure 7): %d candidates\n", len(synapses))
	fmt.Printf("TOUCH: %v, %s pairwise tests, %s auxiliary memory\n\n",
		stats.Dur(st.TotalTime()), stats.Count(st.BoxTests+st.Comparisons), stats.Bytes(st.ExtraBytes))

	_ = pager.DefaultCostModel() // the demo's cost model is documented in pager
}

func pathLen(path []geom.Vec) float64 {
	var l float64
	for i := 0; i+1 < len(path); i++ {
		l += path[i].Dist(path[i+1])
	}
	return l
}
